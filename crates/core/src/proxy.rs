//! The proxy benchmark itself: a DAG of weighted motifs plus a parameter
//! vector, measurable under the performance model and executable for real.

use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::TextGenerator;
use dmpb_datagen::DataDescriptor;
use dmpb_metrics::MetricVector;
use dmpb_motifs::ai::convolution::{conv2d, FilterBank, Padding};
use dmpb_motifs::ai::pooling::{average_pool2d, max_pool2d};
use dmpb_motifs::ai::{activation, fully_connected, normalization, reduce, regularization};
use dmpb_motifs::bigdata::{
    graph_ops, logic, matrix_ops, sampling, set_ops, sort, statistics, transform,
};
use dmpb_motifs::MotifKind;
use dmpb_perfmodel::arch::ArchProfile;
use dmpb_perfmodel::profile::OpProfile;
use dmpb_perfmodel::ExecutionEngine;
use dmpb_workloads::framework::jvm;
use dmpb_workloads::WorkloadKind;

use crate::dag::ProxyDag;
use crate::decompose::{Decomposition, MotifComponent};
use crate::parameters::ProxyParameters;

/// A generated proxy benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyBenchmark {
    kind: WorkloadKind,
    components: Vec<MotifComponent>,
    input: DataDescriptor,
    parameters: ProxyParameters,
}

/// Result of really executing a (scaled-down) proxy on generated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionSummary {
    /// Number of motif kernels executed.
    pub kernels_run: usize,
    /// Folded checksum over all kernel outputs (stability check).
    pub checksum: u64,
}

impl ProxyBenchmark {
    /// Builds a proxy from a decomposition and an initial parameter vector.
    pub fn from_decomposition(decomposition: &Decomposition, parameters: ProxyParameters) -> Self {
        Self {
            kind: decomposition.kind,
            components: decomposition.components.clone(),
            input: decomposition.input,
            parameters,
        }
    }

    /// Which original workload this proxy stands in for.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The proxy's name (e.g. "Proxy TeraSort").
    pub fn name(&self) -> &'static str {
        self.kind.proxy_name()
    }

    /// The motif components and their weights.
    pub fn components(&self) -> &[MotifComponent] {
        &self.components
    }

    /// The current parameter vector.
    pub fn parameters(&self) -> ProxyParameters {
        self.parameters
    }

    /// Returns a copy with a different parameter vector (used by the
    /// auto-tuner's adjusting stage).
    pub fn with_parameters(&self, parameters: ProxyParameters) -> Self {
        Self {
            parameters,
            ..self.clone()
        }
    }

    /// Returns a copy driven by a different input data set (same motifs and
    /// parameters) — the Fig. 8 experiment drives one Proxy K-means with
    /// both sparse and dense inputs.
    pub fn with_input(&self, input: DataDescriptor) -> Self {
        Self {
            input,
            ..self.clone()
        }
    }

    /// Descriptor of the data the proxy processes (the original input
    /// scaled down to the proxy's `dataSize`, keeping type, distribution
    /// and sparsity).
    pub fn proxy_input(&self) -> DataDescriptor {
        self.input.scaled_to(self.parameters.data_size_bytes)
    }

    /// Effective component weights after applying the weight-skew
    /// parameter: the dominant component is scaled by the skew and the
    /// result renormalised.
    pub fn effective_weights(&self) -> Vec<(MotifKind, f64)> {
        if self.components.is_empty() {
            return Vec::new();
        }
        let dominant = self
            .components
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.partial_cmp(&b.1.weight).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut weights: Vec<(MotifKind, f64)> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let w = if i == dominant {
                    c.weight * self.parameters.weight_skew
                } else {
                    c.weight
                };
                (c.motif, w)
            })
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        for (_, w) in &mut weights {
            *w /= total;
        }
        weights
    }

    /// The DAG-like structure of the proxy: the input node, one
    /// intermediate node per motif edge and a final output node.
    pub fn dag(&self) -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", self.proxy_input());
        let weights = self.effective_weights();
        let mut previous = input;
        for (i, (motif, weight)) in weights.iter().enumerate() {
            let node = dag.add_node(
                format!("stage-{}", i + 1),
                self.proxy_input()
                    .scaled_to((self.parameters.data_size_bytes / 2).max(1)),
            );
            dag.add_edge(previous, node, *motif, *weight);
            previous = node;
        }
        dag
    }

    /// The operation profile of the proxy: every component's cost model
    /// over the scaled-down input, rescaled so each component contributes
    /// its weight of the total work, plus the software-stack-emulation
    /// component (the unified memory-management module of the paper's motif
    /// implementations).
    pub fn profile(&self) -> OpProfile {
        let data = self.proxy_input();
        let config = self.parameters.motif_config();
        let weights = self.effective_weights();

        // Raw cost of each motif over the full proxy input.
        let raw: Vec<(f64, OpProfile)> = weights
            .iter()
            .map(|(motif, weight)| (*weight, motif.cost_profile(&data, &config)))
            .collect();
        let total_raw: f64 = raw.iter().map(|(_, p)| p.total_instructions() as f64).sum();

        // Rescale each component so its instruction share equals its weight.
        let mut merged: Option<OpProfile> = None;
        for (weight, profile) in raw {
            let share = profile.total_instructions() as f64 / total_raw.max(1.0);
            let scaled = profile.scaled((weight / share.max(1e-9)).max(1e-6));
            merged = Some(match merged {
                None => scaled,
                Some(acc) => acc.merge(&scaled),
            });
        }
        let mut user = merged.expect("proxy has at least one component");

        // Software-stack emulation (GC-like memory management) component.
        if self.parameters.framework_weight > 0.0 {
            let fw_fraction = self.parameters.framework_weight.min(0.9);
            let user_instr = user.total_instructions() as f64;
            let fw_bytes = (user_instr * fw_fraction
                / (1.0 - fw_fraction)
                / jvm::JVM_INSTRUCTIONS_PER_BYTE) as u64;
            let mut overhead = jvm::jvm_overhead_profile(fw_bytes.max(1 << 20), 1 << 30);
            overhead.name = "stack-emulation".to_string();
            // The proxy's memory-management module is a light-weight
            // reimplementation, not a full JVM: far smaller code footprint.
            overhead.code_footprint_bytes = 256 * 1024;
            user = user.merge(&overhead);
        }

        // Disk traffic of a proxy-scale run: the input is read once and the
        // dominant spill path writes a fraction of it back; at these sizes
        // most intermediate data is absorbed by the page cache, so only a
        // fraction of the logical spill reaches the device.  AI proxies
        // only stream a small input sample.
        let data_bytes = self.parameters.data_size_bytes;
        if self.parameters.spill_to_disk {
            user.disk_read_bytes = (data_bytes as f64 * 0.25) as u64;
            user.disk_write_bytes = (data_bytes as f64 * 0.15) as u64;
        } else {
            user.disk_read_bytes = data_bytes / 400;
            user.disk_write_bytes = 0;
        }

        user.name = self.name().to_string();
        user.parallel_fraction = user.parallel_fraction.min(0.96);
        user
    }

    /// Measures the proxy on one node of `arch` using the shared
    /// performance-model instrument.
    pub fn measure(&self, arch: &ArchProfile) -> MetricVector {
        ExecutionEngine::new(*arch).run(&self.profile(), self.parameters.num_tasks)
    }

    /// Really executes a scaled-down version of every motif kernel in the
    /// proxy on freshly generated data, returning a checksum.  This is the
    /// "runs on a real machine" face of the proxy, used by the examples and
    /// the Criterion benches; `elements` bounds the per-kernel input size.
    pub fn execute_sample(&self, elements: usize, seed: u64) -> ExecutionSummary {
        let mut checksum = 0u64;
        let weights = self.effective_weights();
        for (i, (motif, weight)) in weights.iter().enumerate() {
            let n = ((elements as f64 * weight).ceil() as usize).max(16);
            checksum ^=
                run_sample_kernel(*motif, n, seed.wrapping_add(i as u64)).rotate_left(i as u32);
        }
        ExecutionSummary {
            kernels_run: weights.len(),
            checksum,
        }
    }
}

use crate::fnv::{hash_bytes, hash_f64s};

/// Runs one real motif kernel on `n` generated elements and folds the
/// result into a checksum.
fn run_sample_kernel(motif: MotifKind, n: usize, seed: u64) -> u64 {
    use MotifKind::*;
    match motif {
        QuickSort => {
            let mut keys = TextGenerator::new(seed).generate(n).keys();
            sort::quick_sort(&mut keys);
            hash_bytes(&keys[0])
        }
        MergeSort => {
            let keys = TextGenerator::new(seed).generate(n).keys();
            let sorted = sort::merge_sort(&keys);
            hash_bytes(&sorted[sorted.len() / 2])
        }
        RandomSampling => sampling::random_sample_indices(n, 0.1, seed).len() as u64,
        IntervalSampling => sampling::interval_sample_indices(n, 10, 0).len() as u64,
        SetUnion | SetIntersection | SetDifference => {
            let a: Vec<u64> = (0..n as u64).map(|i| i * 3 % (n as u64)).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| i * 7 % (n as u64)).collect();
            let (a, b) = (set_ops::normalize(&a), set_ops::normalize(&b));
            let out = match motif {
                SetUnion => set_ops::union(&a, &b),
                SetIntersection => set_ops::intersection(&a, &b),
                _ => set_ops::difference(&a, &b),
            };
            out.len() as u64
        }
        GraphConstruct | GraphTraversal => {
            let vertices = n.max(8);
            let edges: Vec<(u32, u32)> = (0..vertices * 4)
                .map(|i| ((i % vertices) as u32, ((i * 31 + 7) % vertices) as u32))
                .collect();
            let graph = graph_ops::construct(vertices, &edges);
            if motif == GraphTraversal {
                graph_ops::traversal_reach(&graph, 0) as u64
            } else {
                graph.num_edges() as u64
            }
        }
        CountStatistics | MinMax | ProbabilityStatistics => {
            let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            match motif {
                CountStatistics => hash_f64s([statistics::count_average(&values).1]),
                MinMax => {
                    let (min, max) = statistics::min_max(&values).unwrap_or((0.0, 0.0));
                    hash_f64s([min, max])
                }
                _ => {
                    let keys: Vec<u32> = (0..n).map(|i| (i % 17) as u32).collect();
                    statistics::probabilities(&keys).len() as u64
                }
            }
        }
        Md5Hash => {
            let data = TextGenerator::new(seed).generate(n.min(512));
            hash_bytes(&logic::md5(data.as_bytes()))
        }
        Encryption => {
            let data = TextGenerator::new(seed).generate(n.min(512));
            hash_bytes(&logic::xor_encrypt(data.as_bytes(), seed | 1))
        }
        Fft | Ifft => {
            let len = n.next_power_of_two().clamp(64, 4096);
            let signal: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11).cos()).collect();
            let spectrum = transform::fft_real(&signal);
            if motif == Ifft {
                hash_f64s(transform::ifft_real(&spectrum))
            } else {
                hash_f64s(spectrum.into_iter().map(|(re, _)| re))
            }
        }
        Dct => hash_f64s(transform::dct2(
            &(0..n.min(256))
                .map(|i| (i as f64 * 0.21).sin())
                .collect::<Vec<_>>(),
        )),
        DistanceCalculation => {
            let dim = 32;
            let a: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.3).sin()).collect();
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).cos()).collect();
            hash_f64s([
                matrix_ops::euclidean_distance(&a, &b),
                matrix_ops::cosine_distance(&a, &b),
            ])
        }
        MatrixMultiply => {
            let size = (n as f64).sqrt().ceil().clamp(4.0, 64.0) as usize;
            let a = MatrixSpec::dense(size, size, seed).generate_dense();
            let b = MatrixSpec::dense(size, size, seed ^ 1).generate_dense();
            hash_f64s([matrix_ops::matrix_multiply(&a, &b).frobenius_norm()])
        }
        // --- AI kernels --------------------------------------------------
        Convolution => {
            let t = ImageGenerator::new(seed)
                .generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
            let filters = FilterBank::constant(4, 3, 3, 0.1);
            hash_f64s(
                conv2d(&t, &filters, 1, Padding::Same)
                    .as_slice()
                    .iter()
                    .map(|&v| f64::from(v)),
            )
        }
        MaxPooling | AveragePooling => {
            let t = ImageGenerator::new(seed)
                .generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
            let out = if motif == MaxPooling {
                max_pool2d(&t, 2, 2)
            } else {
                average_pool2d(&t, 2, 2)
            };
            hash_f64s(out.as_slice().iter().map(|&v| f64::from(v)))
        }
        FullyConnected => {
            let input: Vec<f32> = (0..64).map(|i| i as f32 * 0.01).collect();
            let weights: Vec<f32> = (0..64 * 8).map(|i| (i % 7) as f32 * 0.1).collect();
            let out = fully_connected::fully_connected(&input, &weights, &[0.0; 8], 1, 64, 8);
            hash_f64s(out.into_iter().map(f64::from))
        }
        ElementWiseMultiply => {
            let a: Vec<f32> = (0..n.min(1024)).map(|i| i as f32 * 0.5).collect();
            hash_f64s(
                fully_connected::element_wise_multiply(&a, &a)
                    .into_iter()
                    .map(f64::from),
            )
        }
        Sigmoid | Tanh | Relu | Softmax => {
            let x: Vec<f32> = (0..n.min(1024))
                .map(|i| (i as f32 - 512.0) * 0.01)
                .collect();
            let out = match motif {
                Sigmoid => activation::sigmoid(&x),
                Tanh => activation::tanh(&x),
                Relu => activation::relu(&x),
                _ => activation::softmax(&x, x.len().max(1)),
            };
            hash_f64s(out.into_iter().map(f64::from))
        }
        Dropout => {
            let x = vec![1.0f32; n.min(1024)];
            hash_f64s(
                regularization::dropout(&x, 0.5, seed)
                    .into_iter()
                    .map(f64::from),
            )
        }
        BatchNormalization | CosineNormalization => {
            let x: Vec<f32> = (0..n.min(1024)).map(|i| i as f32 * 0.3).collect();
            hash_f64s(
                normalization::cosine_normalize(&x)
                    .into_iter()
                    .map(f64::from),
            )
        }
        ReduceSum => hash_f64s([f64::from(reduce::reduce_sum(
            &(0..n.min(4096)).map(|i| i as f32).collect::<Vec<_>>(),
        ))]),
        ReduceMax => hash_f64s([f64::from(
            reduce::reduce_max(&(0..n.min(4096)).map(|i| i as f32).collect::<Vec<_>>())
                .unwrap_or(0.0),
        )]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::features::initial_parameters;
    use dmpb_workloads::{all_workloads, ClusterConfig};

    fn proxies() -> Vec<ProxyBenchmark> {
        let cluster = ClusterConfig::five_node_westmere();
        all_workloads()
            .iter()
            .map(|w| {
                let d = decompose(w.as_ref());
                let p = initial_parameters(w.as_ref(), &cluster);
                ProxyBenchmark::from_decomposition(&d, p)
            })
            .collect()
    }

    #[test]
    fn effective_weights_are_normalised_for_every_proxy() {
        for proxy in proxies() {
            let total: f64 = proxy.effective_weights().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", proxy.name());
        }
    }

    #[test]
    fn weight_skew_emphasises_the_dominant_component() {
        let proxy = &proxies()[0]; // TeraSort
        let neutral = proxy.effective_weights();
        let mut params = proxy.parameters();
        params.weight_skew = 1.1;
        let skewed = proxy.with_parameters(params).effective_weights();
        let dominant = neutral
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        assert!(skewed[dominant].1 > neutral[dominant].1);
    }

    #[test]
    fn dag_has_one_edge_per_component() {
        for proxy in proxies() {
            let dag = proxy.dag();
            assert_eq!(dag.num_edges(), proxy.components().len());
            assert!(!dag.describe().is_empty());
        }
    }

    #[test]
    fn profile_and_measurement_are_sane_for_every_proxy() {
        let arch = dmpb_perfmodel::ArchProfile::westmere_e5645();
        for proxy in proxies() {
            let profile = proxy.profile();
            assert!(profile.total_instructions() > 0, "{}", proxy.name());
            let metrics = proxy.measure(&arch);
            assert!(metrics.is_finite());
            assert!(metrics.runtime_secs > 0.0);
            assert!(
                metrics.runtime_secs < 600.0,
                "{} proxy runtime {} is not proxy-fast",
                proxy.name(),
                metrics.runtime_secs
            );
        }
    }

    #[test]
    fn bigger_data_size_means_more_work() {
        let proxy = &proxies()[0];
        let small = proxy.profile().total_instructions();
        let mut params = proxy.parameters();
        params.data_size_bytes *= 4;
        let large = proxy.with_parameters(params).profile().total_instructions();
        assert!(large > 2 * small);
    }

    #[test]
    fn execute_sample_is_deterministic_and_runs_every_kernel() {
        for proxy in proxies() {
            let a = proxy.execute_sample(256, 7);
            let b = proxy.execute_sample(256, 7);
            assert_eq!(a, b, "{}", proxy.name());
            assert_eq!(a.kernels_run, proxy.components().len());
        }
    }

    #[test]
    fn every_motif_kind_has_a_runnable_sample_kernel() {
        for kind in MotifKind::ALL {
            let checksum = run_sample_kernel(kind, 128, 3);
            // Re-running with the same seed must be stable.
            assert_eq!(checksum, run_sample_kernel(kind, 128, 3), "{kind}");
        }
    }

    #[test]
    fn with_input_changes_only_the_data() {
        let proxy = proxies().remove(1); // K-means
        let dense = proxy.with_input(proxy.proxy_input().with_sparsity(0.0));
        assert_eq!(dense.parameters(), proxy.parameters());
        assert_eq!(dense.proxy_input().sparsity, 0.0);
    }
}
