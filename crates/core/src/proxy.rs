//! The proxy benchmark itself: a DAG of weighted data motifs plus a
//! parameter vector, measurable under the performance model and executable
//! for real.
//!
//! All motif cost modelling and kernel execution dispatches through the
//! [`MotifRegistry`] — the proxy holds no per-motif `match` blocks.  The
//! DAG topology comes from the workload's declared [`DagPlan`] (fork/join
//! structure included) and is executed by the stage-parallel
//! [`DagExecutor`].

use std::collections::HashMap;

use dmpb_datagen::DataDescriptor;
use dmpb_metrics::MetricVector;
use dmpb_motifs::{DagPlan, MotifKind, MotifRegistry};
use dmpb_perfmodel::arch::ArchProfile;
use dmpb_perfmodel::profile::OpProfile;
use dmpb_perfmodel::ExecutionEngine;
use dmpb_workloads::framework::jvm;
use dmpb_workloads::WorkloadKind;

use crate::dag::ProxyDag;
use crate::decompose::{Decomposition, MotifComponent};
use crate::executor::{DagExecution, DagExecutor};
use crate::parameters::ProxyParameters;

/// A generated proxy benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyBenchmark {
    kind: WorkloadKind,
    components: Vec<MotifComponent>,
    plan: DagPlan,
    input: DataDescriptor,
    parameters: ProxyParameters,
}

/// Result of really executing a (scaled-down) proxy on generated data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionSummary {
    /// Number of motif kernels executed.
    pub kernels_run: usize,
    /// Folded checksum over all kernel outputs (stability check).
    pub checksum: u64,
}

impl From<&DagExecution> for ExecutionSummary {
    fn from(execution: &DagExecution) -> Self {
        Self {
            kernels_run: execution.kernels_run(),
            checksum: execution.checksum,
        }
    }
}

impl ProxyBenchmark {
    /// Builds a proxy from a decomposition and an initial parameter vector.
    pub fn from_decomposition(decomposition: &Decomposition, parameters: ProxyParameters) -> Self {
        Self {
            kind: decomposition.kind,
            components: decomposition.components.clone(),
            plan: decomposition.plan.clone(),
            input: decomposition.input,
            parameters,
        }
    }

    /// Which original workload this proxy stands in for.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The proxy's name (e.g. "Proxy TeraSort").
    pub fn name(&self) -> &'static str {
        self.kind.proxy_name()
    }

    /// The motif components and their weights.
    pub fn components(&self) -> &[MotifComponent] {
        &self.components
    }

    /// The declared DAG topology the proxy's edges follow.
    pub fn plan(&self) -> &DagPlan {
        &self.plan
    }

    /// The current parameter vector.
    pub fn parameters(&self) -> ProxyParameters {
        self.parameters
    }

    /// Returns a copy with a different parameter vector (used by the
    /// auto-tuner's adjusting stage).
    pub fn with_parameters(&self, parameters: ProxyParameters) -> Self {
        Self {
            parameters,
            ..self.clone()
        }
    }

    /// Returns a copy driven by a different input data set (same motifs and
    /// parameters) — the Fig. 8 experiment drives one Proxy K-means with
    /// both sparse and dense inputs.
    pub fn with_input(&self, input: DataDescriptor) -> Self {
        Self {
            input,
            ..self.clone()
        }
    }

    /// Descriptor of the data the proxy processes (the original input
    /// scaled down to the proxy's `dataSize`, keeping type, distribution
    /// and sparsity).
    pub fn proxy_input(&self) -> DataDescriptor {
        self.input.scaled_to(self.parameters.data_size_bytes)
    }

    /// Effective component weights after applying the weight-skew
    /// parameter: the dominant component is scaled by the skew and the
    /// result renormalised.
    pub fn effective_weights(&self) -> Vec<(MotifKind, f64)> {
        if self.components.is_empty() {
            return Vec::new();
        }
        let dominant = self
            .components
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.partial_cmp(&b.1.weight).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut weights: Vec<(MotifKind, f64)> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let w = if i == dominant {
                    c.weight * self.parameters.weight_skew
                } else {
                    c.weight
                };
                (c.motif, w)
            })
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        for (_, w) in &mut weights {
            *w /= total;
        }
        weights
    }

    /// The proxy's DAG: the workload's declared fork/join topology
    /// ([`ProxyBenchmark::plan`]) instantiated with the effectively
    /// weighted motif edges and scaled data descriptors.  Source nodes
    /// carry the proxy input, intermediate and sink nodes the (half-sized)
    /// in-flight data sets.
    pub fn dag(&self) -> ProxyDag {
        self.dag_from_plan(&self.plan)
    }

    /// The degenerate straight-pipeline version of the same proxy (one
    /// stage per motif, in component order) — the pre-fork/join shape,
    /// kept for linear-vs-branching comparisons in the benches.
    pub fn chain_dag(&self) -> ProxyDag {
        let motifs: Vec<MotifKind> = self.components.iter().map(|c| c.motif).collect();
        self.dag_from_plan(&DagPlan::chain(&motifs))
    }

    fn dag_from_plan(&self, plan: &DagPlan) -> ProxyDag {
        let weights: HashMap<MotifKind, f64> = self.effective_weights().into_iter().collect();
        let intermediate = self
            .proxy_input()
            .scaled_to((self.parameters.data_size_bytes / 2).max(1));

        let mut has_incoming = vec![false; plan.node_labels().len()];
        for edge in plan.edges() {
            has_incoming[edge.to] = true;
        }

        let mut dag = ProxyDag::new();
        for (id, label) in plan.node_labels().iter().enumerate() {
            let descriptor = if has_incoming[id] {
                intermediate
            } else {
                self.proxy_input()
            };
            dag.add_node(label.clone(), descriptor);
        }
        for edge in plan.edges() {
            let weight = weights
                .get(&edge.motif)
                .copied()
                .expect("plan motifs match the decomposition components");
            dag.add_edge(edge.from, edge.to, edge.motif, weight);
        }
        dag
    }

    /// The operation profile of the proxy: every component's cost model
    /// over the scaled-down input, rescaled so each component contributes
    /// its weight of the total work, plus the software-stack-emulation
    /// component (the unified memory-management module of the paper's motif
    /// implementations).
    pub fn profile(&self) -> OpProfile {
        let data = self.proxy_input();
        let config = self.parameters.motif_config();
        let weights = self.effective_weights();
        let registry = MotifRegistry::global();

        // Raw cost of each motif over the full proxy input.
        let raw: Vec<(f64, OpProfile)> = weights
            .iter()
            .map(|(motif, weight)| {
                (
                    *weight,
                    registry.kernel(*motif).cost_profile(&data, &config),
                )
            })
            .collect();
        let total_raw: f64 = raw.iter().map(|(_, p)| p.total_instructions() as f64).sum();

        // Rescale each component so its instruction share equals its weight.
        let mut merged: Option<OpProfile> = None;
        for (weight, profile) in raw {
            let share = profile.total_instructions() as f64 / total_raw.max(1.0);
            let scaled = profile.scaled((weight / share.max(1e-9)).max(1e-6));
            merged = Some(match merged {
                None => scaled,
                Some(acc) => acc.merge(&scaled),
            });
        }
        let mut user = merged.expect("proxy has at least one component");

        // Software-stack emulation (GC-like memory management) component.
        if self.parameters.framework_weight > 0.0 {
            let fw_fraction = self.parameters.framework_weight.min(0.9);
            let user_instr = user.total_instructions() as f64;
            let fw_bytes = (user_instr * fw_fraction
                / (1.0 - fw_fraction)
                / jvm::JVM_INSTRUCTIONS_PER_BYTE) as u64;
            let mut overhead = jvm::jvm_overhead_profile(fw_bytes.max(1 << 20), 1 << 30);
            overhead.name = "stack-emulation".to_string();
            // The proxy's memory-management module is a light-weight
            // reimplementation, not a full JVM: far smaller code footprint.
            overhead.code_footprint_bytes = 256 * 1024;
            user = user.merge(&overhead);
        }

        // Disk traffic of a proxy-scale run: the input is read once and the
        // dominant spill path writes a fraction of it back; at these sizes
        // most intermediate data is absorbed by the page cache, so only a
        // fraction of the logical spill reaches the device.  AI proxies
        // only stream a small input sample.
        let data_bytes = self.parameters.data_size_bytes;
        if self.parameters.spill_to_disk {
            user.disk_read_bytes = (data_bytes as f64 * 0.25) as u64;
            user.disk_write_bytes = (data_bytes as f64 * 0.15) as u64;
        } else {
            user.disk_read_bytes = data_bytes / 400;
            user.disk_write_bytes = 0;
        }

        user.name = self.name().to_string();
        user.parallel_fraction = user.parallel_fraction.min(0.96);
        user
    }

    /// Measures the proxy on one node of `arch` using the shared
    /// performance-model instrument.
    pub fn measure(&self, arch: &ArchProfile) -> MetricVector {
        ExecutionEngine::new(*arch).run(&self.profile(), self.parameters.num_tasks)
    }

    /// Really executes every motif kernel of the proxy's DAG on freshly
    /// generated data through `executor`, returning the full per-edge
    /// execution record.  This is the "runs on a real machine" face of the
    /// proxy; `elements` bounds the per-kernel input size.
    pub fn execute_dag(&self, executor: &DagExecutor, elements: usize, seed: u64) -> DagExecution {
        executor.execute(&self.dag(), elements, seed)
    }

    /// Convenience wrapper around [`ProxyBenchmark::execute_dag`] with a
    /// serial executor, summarised to kernel count + checksum (used by the
    /// examples and the Criterion benches).
    pub fn execute_sample(&self, elements: usize, seed: u64) -> ExecutionSummary {
        ExecutionSummary::from(&self.execute_dag(&DagExecutor::new(), elements, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::features::initial_parameters;
    use dmpb_workloads::{all_workloads, ClusterConfig};

    fn proxies() -> Vec<ProxyBenchmark> {
        let cluster = ClusterConfig::five_node_westmere();
        all_workloads()
            .iter()
            .map(|w| {
                let d = decompose(w.as_ref());
                let p = initial_parameters(w.as_ref(), &cluster);
                ProxyBenchmark::from_decomposition(&d, p)
            })
            .collect()
    }

    #[test]
    fn effective_weights_are_normalised_for_every_proxy() {
        for proxy in proxies() {
            let total: f64 = proxy.effective_weights().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", proxy.name());
        }
    }

    #[test]
    fn weight_skew_emphasises_the_dominant_component() {
        let proxy = &proxies()[0]; // TeraSort
        let neutral = proxy.effective_weights();
        let mut params = proxy.parameters();
        params.weight_skew = 1.1;
        let skewed = proxy.with_parameters(params).effective_weights();
        let dominant = neutral
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        assert!(skewed[dominant].1 > neutral[dominant].1);
    }

    #[test]
    fn dag_has_one_edge_per_component() {
        for proxy in proxies() {
            let dag = proxy.dag();
            assert_eq!(dag.num_edges(), proxy.components().len());
            assert!(!dag.describe().is_empty());
        }
    }

    #[test]
    fn dag_follows_the_declared_plan_and_chain_dag_stays_linear() {
        for proxy in proxies() {
            let dag = proxy.dag();
            assert_eq!(
                dag.is_branching(),
                proxy.plan().is_branching(),
                "{}",
                proxy.name()
            );
            let chain = proxy.chain_dag();
            assert!(!chain.is_branching(), "{}", proxy.name());
            assert_eq!(chain.num_edges(), dag.num_edges());
        }
    }

    #[test]
    fn dag_edge_weights_are_the_effective_weights() {
        for proxy in proxies() {
            let weights: HashMap<MotifKind, f64> = proxy.effective_weights().into_iter().collect();
            for edge in proxy.dag().edges() {
                assert_eq!(edge.weight, weights[&edge.motif], "{}", proxy.name());
            }
        }
    }

    #[test]
    fn profile_and_measurement_are_sane_for_every_proxy() {
        let arch = dmpb_perfmodel::ArchProfile::westmere_e5645();
        for proxy in proxies() {
            let profile = proxy.profile();
            assert!(profile.total_instructions() > 0, "{}", proxy.name());
            let metrics = proxy.measure(&arch);
            assert!(metrics.is_finite());
            assert!(metrics.runtime_secs > 0.0);
            assert!(
                metrics.runtime_secs < 600.0,
                "{} proxy runtime {} is not proxy-fast",
                proxy.name(),
                metrics.runtime_secs
            );
        }
    }

    #[test]
    fn bigger_data_size_means_more_work() {
        let proxy = &proxies()[0];
        let small = proxy.profile().total_instructions();
        let mut params = proxy.parameters();
        params.data_size_bytes *= 4;
        let large = proxy.with_parameters(params).profile().total_instructions();
        assert!(large > 2 * small);
    }

    #[test]
    fn execute_sample_is_deterministic_and_runs_every_kernel() {
        for proxy in proxies() {
            let a = proxy.execute_sample(256, 7);
            let b = proxy.execute_sample(256, 7);
            assert_eq!(a, b, "{}", proxy.name());
            assert_eq!(a.kernels_run, proxy.components().len());
        }
    }

    #[test]
    fn with_input_changes_only_the_data() {
        let proxy = proxies().remove(1); // K-means
        let dense = proxy.with_input(proxy.proxy_input().with_sparsity(0.0));
        assert_eq!(dense.parameters(), proxy.parameters());
        assert_eq!(dense.proxy_input().sparsity, 0.0);
    }
}
