//! # dmpb-core — the data motif-based proxy benchmark generating methodology
//!
//! This crate is the paper's primary contribution: given a big data or AI
//! workload, generate a **proxy benchmark** — a DAG-like combination of
//! data motifs with per-motif weights and parameters — that runs orders of
//! magnitude faster while matching the original workload's system-level and
//! micro-architectural metric vector to within a deviation bound.
//!
//! The pipeline mirrors Fig. 1 / Fig. 3 of the paper:
//!
//! 1. **Decomposing** ([`decompose`]) — profile the workload, correlate its
//!    hotspots to motif classes and select the concrete motif
//!    implementations, with initial weights set from execution ratios
//!    (Table III; e.g. TeraSort = 70 % sort, 10 % sampling, 20 % graph).
//! 2. **Feature selecting** ([`features`], [`parameters`]) — choose the
//!    metrics to match (Table V) and initialise the parameter vector **P**
//!    (Table I: dataSize, chunkSize, numTasks, weight, batchSize, …) from
//!    the original workload's configuration, scaling the input data down.
//! 3. **Adjusting stage** ([`impact`], [`dtree`], [`autotune`]) — learn the
//!    impact of each parameter on each metric by one-parameter-at-a-time
//!    perturbation, train a decision tree on those impacts, and use it to
//!    pick which parameter to adjust when a metric deviates.
//! 4. **Feedback stage** ([`autotune`]) — re-measure the tuned proxy; if
//!    every tracked metric deviates by less than the bound (15 % by
//!    default) the proxy is *qualified*, otherwise the offending metrics
//!    are fed back to the adjusting stage.
//!
//! The result is a [`proxy::ProxyBenchmark`] (see [`generator`] for the
//! end-to-end driver and [`suite`] for the eight-proxy suite: the five
//! proxies of the paper's evaluation plus the three Spark stack twins),
//! which can be measured under the shared performance-model instrument or
//! executed for real on generated sample data: the workload's declared
//! fork/join topology becomes a branching [`dag::ProxyDag`], and the
//! stage-parallel [`executor::DagExecutor`] runs its motif kernels —
//! independent branches concurrently — through the motif-kernel registry,
//! with per-edge derived seeds keeping digests byte-identical across
//! thread counts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autotune;
pub mod dag;
pub mod decompose;
pub mod dtree;
pub mod executor;
pub mod features;
pub mod fnv;
pub mod generator;
pub mod impact;
pub mod parameters;
pub mod proxy;
pub mod runner;
pub mod suite;

pub use executor::{DagExecution, DagExecutor};
pub use generator::{GenerationReport, ProxyGenerator};
pub use parameters::ProxyParameters;
pub use proxy::ProxyBenchmark;
pub use runner::{SuiteReport, SuiteRunner, TuningCache};
pub use suite::ProxySuite;
