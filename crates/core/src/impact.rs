//! Impact analysis: how each parameter adjustment moves each metric.
//!
//! "The learning process changes one parameter each time and execute
//! multiple times to characterize the parameter's impact on each metric."
//! The resulting table is both human-readable (which knob moves which
//! metric) and the training set for the decision tree of the adjusting
//! stage.

use dmpb_metrics::MetricId;
use dmpb_perfmodel::arch::ArchProfile;

use crate::dtree::Sample;
use crate::parameters::{Direction, ParameterId};
use crate::proxy::ProxyBenchmark;

/// One candidate tuning action.
pub type Action = (ParameterId, Direction);

/// Relative metric changes caused by one action.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactEntry {
    /// The action that was applied.
    pub action: Action,
    /// Relative change of each tracked metric, in the order of
    /// [`ImpactAnalysis::metrics`].
    pub deltas: Vec<f64>,
}

/// The full impact table of one proxy benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactAnalysis {
    /// Metrics the impacts refer to.
    pub metrics: Vec<MetricId>,
    /// One entry per candidate action.
    pub entries: Vec<ImpactEntry>,
}

/// Runs the impact analysis: measures the proxy once as a baseline, then
/// re-measures it with every parameter nudged one step in each direction.
pub fn analyze(proxy: &ProxyBenchmark, arch: &ArchProfile, metrics: &[MetricId]) -> ImpactAnalysis {
    let baseline = proxy.measure(arch);
    let mut entries = Vec::new();
    for parameter in ParameterId::ALL {
        for direction in [Direction::Up, Direction::Down] {
            let adjusted = proxy.parameters().adjusted(parameter, direction);
            if adjusted == proxy.parameters() {
                // Already at the bound; the action does nothing.
                continue;
            }
            let measured = proxy.with_parameters(adjusted).measure(arch);
            let deltas = metrics
                .iter()
                .map(|&m| {
                    let base = baseline.get(m);
                    if base == 0.0 {
                        0.0
                    } else {
                        (measured.get(m) - base) / base
                    }
                })
                .collect();
            entries.push(ImpactEntry {
                action: (parameter, direction),
                deltas,
            });
        }
    }
    ImpactAnalysis {
        metrics: metrics.to_vec(),
        entries,
    }
}

impl ImpactAnalysis {
    /// The candidate actions in entry order.
    pub fn actions(&self) -> Vec<Action> {
        self.entries.iter().map(|e| e.action).collect()
    }

    /// Training samples for the decision tree: each action's impact vector
    /// labels itself, augmented with scaled copies so the tree sees that
    /// the *direction* of the needed change matters more than its size.
    pub fn training_samples(&self) -> Vec<Sample> {
        let mut samples = Vec::new();
        for (label, entry) in self.entries.iter().enumerate() {
            for scale in [0.5, 1.0, 2.0] {
                samples.push(Sample {
                    features: entry.deltas.iter().map(|d| d * scale).collect(),
                    label,
                });
            }
        }
        samples
    }

    /// The action whose impact on `metric` is strongest in the direction of
    /// `needed_change` (the greedy baseline tuner).
    pub fn best_greedy_action(&self, metric: MetricId, needed_change: f64) -> Option<Action> {
        let index = self.metrics.iter().position(|&m| m == metric)?;
        self.entries
            .iter()
            .filter(|e| e.deltas[index] * needed_change > 0.0)
            .max_by(|a, b| {
                a.deltas[index]
                    .abs()
                    .partial_cmp(&b.deltas[index].abs())
                    .expect("finite impact")
            })
            .map(|e| e.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::features::initial_parameters;
    use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};

    fn terasort_proxy() -> ProxyBenchmark {
        let cluster = ClusterConfig::five_node_westmere();
        let workload = workload_by_kind(WorkloadKind::TeraSort);
        ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        )
    }

    #[test]
    fn impact_table_covers_both_directions_of_most_parameters() {
        let arch = ArchProfile::westmere_e5645();
        let metrics = [
            MetricId::Ipc,
            MetricId::DiskIoBandwidth,
            MetricId::L1dHitRatio,
        ];
        let analysis = analyze(&terasort_proxy(), &arch, &metrics);
        assert!(
            analysis.entries.len() >= 8,
            "entries {}",
            analysis.entries.len()
        );
        assert!(analysis.entries.iter().all(|e| e.deltas.len() == 3));
    }

    #[test]
    fn training_samples_label_every_entry() {
        let arch = ArchProfile::westmere_e5645();
        let metrics = [MetricId::Ipc, MetricId::Mips];
        let analysis = analyze(&terasort_proxy(), &arch, &metrics);
        let samples = analysis.training_samples();
        assert_eq!(samples.len(), analysis.entries.len() * 3);
        let max_label = samples.iter().map(|s| s.label).max().unwrap();
        assert_eq!(max_label, analysis.entries.len() - 1);
    }

    #[test]
    fn greedy_action_moves_the_metric_in_the_needed_direction() {
        let arch = ArchProfile::westmere_e5645();
        let metrics = [MetricId::DiskIoBandwidth];
        let analysis = analyze(&terasort_proxy(), &arch, &metrics);
        if let Some(action) = analysis.best_greedy_action(MetricId::DiskIoBandwidth, 1.0) {
            let index = 0;
            let entry = analysis
                .entries
                .iter()
                .find(|e| e.action == action)
                .unwrap();
            assert!(entry.deltas[index] > 0.0);
        }
    }
}
