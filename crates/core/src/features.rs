//! Feature selecting: the metrics to match and the initial parameter
//! vector.
//!
//! "The feature selecting stage is used to choose the concerned metrics and
//! initialize the parameters of data motifs." — the metrics default to the
//! full Table V set (minus raw runtime, which the proxy is *supposed* to
//! shrink), and the parameters are initialised from the original workload's
//! configuration with the input data scaled down.

use dmpb_metrics::MetricId;
use dmpb_workloads::workload::Workload;
use dmpb_workloads::{ClusterConfig, Framework};

use crate::parameters::ProxyParameters;

/// How much the original input volume is scaled down for the proxy's
/// initial `dataSize` (the auto-tuner may adjust it further).
pub const DEFAULT_DATA_SCALE_DOWN: u64 = 512;

/// Initial stack-emulation weight for a Spark-stack proxy.  Spark pipelines
/// narrow stages and caches deserialised RDDs, so a smaller share of its
/// time is managed-runtime overhead than under MapReduce (whose big-data
/// default is 0.45); the auto-tuner refines it from there.
pub const SPARK_INITIAL_FRAMEWORK_WEIGHT: f64 = 0.30;

/// The metric targets and qualification threshold of a proxy generation
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSelection {
    /// Metrics the proxy must match.
    pub metrics: Vec<MetricId>,
    /// Maximum allowed relative deviation per metric (the paper uses 15 %).
    pub deviation_threshold: f64,
}

impl FeatureSelection {
    /// The paper's default: every Table V metric except raw runtime, with a
    /// 15 % deviation bound.
    pub fn paper_default() -> Self {
        Self {
            metrics: MetricId::TUNABLE.to_vec(),
            deviation_threshold: 0.15,
        }
    }

    /// A selection focused on cache behaviour only (the paper's example of
    /// tuning towards a particular concern).
    pub fn cache_focused() -> Self {
        Self {
            metrics: vec![
                MetricId::L1iHitRatio,
                MetricId::L1dHitRatio,
                MetricId::L2HitRatio,
                MetricId::L3HitRatio,
            ],
            deviation_threshold: 0.15,
        }
    }
}

impl Default for FeatureSelection {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Initialises the parameter vector **P** from the original workload's
/// configuration: the input data set and chunk size are scaled down, and
/// `numTasks` is initialised to the original parallelism degree.
pub fn initial_parameters(workload: &dyn Workload, cluster: &ClusterConfig) -> ProxyParameters {
    let input = workload.input_descriptor();
    let data_size = (input.total_bytes / DEFAULT_DATA_SCALE_DOWN).clamp(16 << 20, 4 << 30);
    let num_tasks = workload.tasks_per_node(cluster);

    if workload.kind().is_ai() {
        // Geometry / batch follow the original network input.
        // The geometry follows the network's dominant interior layers (the
        // stem downsamples the 299x299 input almost immediately), so the
        // proxy's convolutions see representative channel counts.
        let (batch, geometry) = match workload.kind() {
            dmpb_workloads::WorkloadKind::InceptionV3 => (32, (35, 35, 192)),
            _ => (128, (32, 32, 3)),
        };
        ProxyParameters::ai(data_size, num_tasks, batch, geometry)
    } else {
        let mut params = ProxyParameters::big_data(data_size, num_tasks);
        if workload.kind().framework() == Framework::Spark {
            params.framework_weight = SPARK_INITIAL_FRAMEWORK_WEIGHT;
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_workloads::{all_workloads, WorkloadKind};

    #[test]
    fn paper_default_covers_all_tunable_metrics() {
        let f = FeatureSelection::paper_default();
        assert_eq!(f.metrics.len(), MetricId::TUNABLE.len());
        assert!((f.deviation_threshold - 0.15).abs() < 1e-12);
        assert!(!f.metrics.contains(&MetricId::Runtime));
    }

    #[test]
    fn cache_focused_selection_is_a_subset() {
        let f = FeatureSelection::cache_focused();
        assert_eq!(f.metrics.len(), 4);
        assert!(f.metrics.iter().all(|m| MetricId::TUNABLE.contains(m)));
    }

    #[test]
    fn initial_parameters_scale_down_the_input() {
        let cluster = ClusterConfig::five_node_westmere();
        for w in all_workloads() {
            let p = initial_parameters(w.as_ref(), &cluster);
            assert!(p.data_size_bytes < w.input_descriptor().total_bytes);
            assert_eq!(p.num_tasks, cluster.tasks_per_node);
            assert_eq!(p.spill_to_disk, !w.kind().is_ai(), "{}", w.name());
        }
    }

    #[test]
    fn spark_proxies_start_with_a_lighter_stack_emulation_weight() {
        let cluster = ClusterConfig::five_node_westmere();
        for w in all_workloads() {
            let p = initial_parameters(w.as_ref(), &cluster);
            match w.kind().framework() {
                dmpb_workloads::Framework::Spark => {
                    assert_eq!(
                        p.framework_weight,
                        SPARK_INITIAL_FRAMEWORK_WEIGHT,
                        "{}",
                        w.name()
                    );
                }
                dmpb_workloads::Framework::Hadoop => {
                    assert!(
                        p.framework_weight > SPARK_INITIAL_FRAMEWORK_WEIGHT,
                        "{}",
                        w.name()
                    );
                }
                dmpb_workloads::Framework::TensorFlow => {}
            }
        }
    }

    #[test]
    fn ai_parameters_follow_the_network_input() {
        let cluster = ClusterConfig::five_node_westmere();
        let workloads = all_workloads();
        let inception = workloads
            .iter()
            .find(|w| w.kind() == WorkloadKind::InceptionV3)
            .unwrap();
        let p = initial_parameters(inception.as_ref(), &cluster);
        assert_eq!(p.batch_size, 32);
        assert_eq!(p.geometry, (35, 35, 192));
    }
}
