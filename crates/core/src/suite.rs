//! The eight-proxy suite: the paper's five workloads plus the three
//! Spark stack twins.

use dmpb_workloads::{ClusterConfig, WorkloadKind};

use crate::generator::{GenerationReport, ProxyGenerator};
use crate::runner::SuiteRunner;

/// The generated proxy benchmarks — one per [`WorkloadKind`] (the
/// paper's five plus Proxy Spark TeraSort / K-means / PageRank) — with
/// their generation reports.
#[derive(Debug, Clone)]
pub struct ProxySuite {
    reports: Vec<GenerationReport>,
}

impl ProxySuite {
    /// Generates all eight proxies against the given cluster (the paper
    /// generates its five against the five-node Westmere cluster of
    /// Section III).
    pub fn generate(cluster: ClusterConfig) -> Self {
        let generator = ProxyGenerator::new(cluster);
        let reports = WorkloadKind::ALL
            .iter()
            .map(|&kind| generator.generate_kind(kind))
            .collect();
        Self { reports }
    }

    /// Generates all eight proxies concurrently through a
    /// [`SuiteRunner`]; equivalent to [`ProxySuite::generate`] but bounded
    /// by the slowest single tune rather than the sum of all eight.
    pub fn generate_parallel(cluster: ClusterConfig) -> Self {
        Self::from_reports(SuiteRunner::new(cluster).tune_all())
    }

    /// Wraps pre-computed generation reports (e.g. a
    /// [`crate::runner::SuiteReport`]'s).
    pub fn from_reports(reports: Vec<GenerationReport>) -> Self {
        Self { reports }
    }

    /// Generation reports in Table VI order.
    pub fn reports(&self) -> &[GenerationReport] {
        &self.reports
    }

    /// The report for one workload.
    pub fn report(&self, kind: WorkloadKind) -> &GenerationReport {
        self.reports
            .iter()
            .find(|r| r.kind == kind)
            .expect("suite contains every workload kind")
    }

    /// Average accuracy across all proxies (the paper's headline
    /// "above 90 % on average" figure covers its five).
    pub fn average_accuracy(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.accuracy.average())
            .sum::<f64>()
            / self.reports.len() as f64
    }

    /// Minimum runtime speedup across all proxies.
    pub fn min_speedup(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.speedup)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_generation_matches_serial_generation() {
        let cluster = ClusterConfig::five_node_westmere();
        let serial = ProxySuite::generate(cluster);
        let parallel = ProxySuite::generate_parallel(cluster);
        assert_eq!(serial.reports().len(), parallel.reports().len());
        for (s, p) in serial.reports().iter().zip(parallel.reports()) {
            assert_eq!(s.kind, p.kind);
            assert_eq!(s.proxy.parameters(), p.proxy.parameters());
            assert_eq!(s.proxy_metrics, p.proxy_metrics);
        }
    }

    #[test]
    fn suite_generates_all_eight_proxies_with_high_accuracy_and_speedup() {
        let suite = ProxySuite::generate(ClusterConfig::five_node_westmere());
        assert_eq!(suite.reports().len(), 8);
        for kind in WorkloadKind::ALL {
            let report = suite.report(kind);
            assert_eq!(report.kind, kind);
            assert!(
                report.accuracy.average() > 0.5,
                "{kind}: accuracy {}",
                report.accuracy.average()
            );
            assert!(report.speedup > 10.0, "{kind}: speedup {}", report.speedup);
        }
        assert!(
            suite.average_accuracy() > 0.65,
            "suite accuracy {}",
            suite.average_accuracy()
        );
        assert!(suite.min_speedup() > 10.0);
    }
}
