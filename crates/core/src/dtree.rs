//! A small CART-style decision-tree classifier.
//!
//! The paper's auto-tuning tool "builds a decision tree to determine which
//! parameter to tune if one metric has a large deviation".  This module
//! provides that machine-learning model: a classification tree trained on
//! the impact-analysis samples (feature vector = the metric changes a
//! parameter adjustment causes, label = that parameter adjustment) and
//! queried at tuning time with the change the proxy *needs*.

/// One training sample: a feature vector and a class label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// Class label.
    pub label: usize,
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionTree {
    /// Leaf predicting a single label.
    Leaf {
        /// Predicted label.
        label: usize,
    },
    /// Internal node splitting on `feature < threshold`.
    Node {
        /// Feature index the node tests.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `feature < threshold`.
        left: Box<DecisionTree>,
        /// Subtree for `feature >= threshold`.
        right: Box<DecisionTree>,
    },
}

fn gini(labels: &[usize], num_classes: usize) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let n = labels.len() as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

fn majority(labels: &[usize], num_classes: usize) -> usize {
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Trains a tree on `samples` with at most `max_depth` levels.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the feature vectors have different
    /// lengths.
    pub fn train(samples: &[Sample], max_depth: usize) -> Self {
        assert!(!samples.is_empty(), "training set must not be empty");
        let dims = samples[0].features.len();
        assert!(
            samples.iter().all(|s| s.features.len() == dims),
            "all samples must have the same feature dimensionality"
        );
        let num_classes = samples.iter().map(|s| s.label).max().unwrap_or(0) + 1;
        Self::build(samples, max_depth, num_classes)
    }

    fn build(samples: &[Sample], depth: usize, num_classes: usize) -> Self {
        let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
        let impurity = gini(&labels, num_classes);
        if depth == 0 || impurity == 0.0 || samples.len() < 2 {
            return DecisionTree::Leaf {
                label: majority(&labels, num_classes),
            };
        }

        let dims = samples[0].features.len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted impurity)
        for feature in 0..dims {
            let mut values: Vec<f64> = samples.iter().map(|s| s.features[feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            values.dedup();
            for pair in values.windows(2) {
                let threshold = (pair[0] + pair[1]) / 2.0;
                let (left, right): (Vec<&Sample>, Vec<&Sample>) = samples
                    .iter()
                    .partition(|s| s.features[feature] < threshold);
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let left_labels: Vec<usize> = left.iter().map(|s| s.label).collect();
                let right_labels: Vec<usize> = right.iter().map(|s| s.label).collect();
                let weighted = (left.len() as f64 * gini(&left_labels, num_classes)
                    + right.len() as f64 * gini(&right_labels, num_classes))
                    / samples.len() as f64;
                if best.map_or(true, |(_, _, b)| weighted < b) {
                    best = Some((feature, threshold, weighted));
                }
            }
        }

        match best {
            Some((feature, threshold, weighted)) if weighted < impurity - 1e-12 => {
                let (left, right): (Vec<Sample>, Vec<Sample>) = samples
                    .iter()
                    .cloned()
                    .partition(|s| s.features[feature] < threshold);
                DecisionTree::Node {
                    feature,
                    threshold,
                    left: Box::new(Self::build(&left, depth - 1, num_classes)),
                    right: Box::new(Self::build(&right, depth - 1, num_classes)),
                }
            }
            _ => DecisionTree::Leaf {
                label: majority(&labels, num_classes),
            },
        }
    }

    /// Predicts the label of a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        match self {
            DecisionTree::Leaf { label } => *label,
            DecisionTree::Node {
                feature,
                threshold,
                left,
                right,
            } => {
                if features.get(*feature).copied().unwrap_or(0.0) < *threshold {
                    left.predict(features)
                } else {
                    right.predict(features)
                }
            }
        }
    }

    /// Number of decision nodes (excluding leaves), a size measure used by
    /// tests and reports.
    pub fn num_splits(&self) -> usize {
        match self {
            DecisionTree::Leaf { .. } => 0,
            DecisionTree::Node { left, right, .. } => 1 + left.num_splits() + right.num_splits(),
        }
    }

    /// Training-set accuracy (fraction of samples classified correctly).
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.predict(&s.features) == s.label)
            .count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_samples() -> Vec<Sample> {
        // Two features; label 1 iff feature 0 > 0.5 (feature 1 is noise).
        vec![
            Sample {
                features: vec![0.1, 0.9],
                label: 0,
            },
            Sample {
                features: vec![0.2, 0.1],
                label: 0,
            },
            Sample {
                features: vec![0.3, 0.7],
                label: 0,
            },
            Sample {
                features: vec![0.7, 0.2],
                label: 1,
            },
            Sample {
                features: vec![0.8, 0.8],
                label: 1,
            },
            Sample {
                features: vec![0.9, 0.4],
                label: 1,
            },
        ]
    }

    #[test]
    fn learns_a_simple_threshold() {
        let tree = DecisionTree::train(&xor_like_samples(), 3);
        assert_eq!(tree.predict(&[0.05, 0.5]), 0);
        assert_eq!(tree.predict(&[0.95, 0.5]), 1);
        assert_eq!(tree.accuracy(&xor_like_samples()), 1.0);
        assert!(tree.num_splits() >= 1);
    }

    #[test]
    fn learns_a_two_level_rule() {
        // label = 0 if f0 < 0.5 else (1 if f1 < 0.5 else 2)
        let mut samples = Vec::new();
        for i in 0..10 {
            let a = i as f64 / 10.0;
            for j in 0..10 {
                let b = j as f64 / 10.0;
                let label = if a < 0.5 {
                    0
                } else if b < 0.5 {
                    1
                } else {
                    2
                };
                samples.push(Sample {
                    features: vec![a, b],
                    label,
                });
            }
        }
        let tree = DecisionTree::train(&samples, 4);
        assert!(tree.accuracy(&samples) > 0.98);
        assert_eq!(tree.predict(&[0.2, 0.9]), 0);
        assert_eq!(tree.predict(&[0.9, 0.2]), 1);
        assert_eq!(tree.predict(&[0.9, 0.9]), 2);
    }

    #[test]
    fn pure_training_set_yields_a_leaf() {
        let samples = vec![
            Sample {
                features: vec![1.0],
                label: 3,
            },
            Sample {
                features: vec![2.0],
                label: 3,
            },
        ];
        let tree = DecisionTree::train(&samples, 5);
        assert_eq!(tree, DecisionTree::Leaf { label: 3 });
    }

    #[test]
    fn zero_depth_predicts_the_majority() {
        let tree = DecisionTree::train(&xor_like_samples(), 0);
        assert_eq!(tree.num_splits(), 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_is_rejected() {
        let _ = DecisionTree::train(&[], 3);
    }
}
