//! The parameter vector **P** (Table I of the paper).

use dmpb_motifs::MotifConfig;

/// One tunable parameter of a proxy benchmark (the rows of Table I, plus
/// the framework-emulation weight of the light-weight stack model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParameterId {
    /// Input data size processed by the proxy (`dataSize` / `totalSize`).
    DataSize,
    /// Data block size processed by each thread (`chunkSize`).
    ChunkSize,
    /// Process / thread count (`numTasks`).
    NumTasks,
    /// Contribution of each data motif (`weight`) — adjusted jointly as a
    /// skew between compute-heavy and data-movement-heavy motifs.
    Weight,
    /// Batch size per iteration for AI motifs (`batchSize`).
    BatchSize,
    /// Weight of the software-stack emulation component (the unified
    /// memory-management / GC-like module of the motif implementations).
    FrameworkWeight,
}

impl ParameterId {
    /// Every tunable parameter in a stable order.
    pub const ALL: [ParameterId; 6] = [
        ParameterId::DataSize,
        ParameterId::ChunkSize,
        ParameterId::NumTasks,
        ParameterId::Weight,
        ParameterId::BatchSize,
        ParameterId::FrameworkWeight,
    ];

    /// Short name used in reports (Table I naming).
    pub fn name(&self) -> &'static str {
        match self {
            ParameterId::DataSize => "dataSize",
            ParameterId::ChunkSize => "chunkSize",
            ParameterId::NumTasks => "numTasks",
            ParameterId::Weight => "weight",
            ParameterId::BatchSize => "batchSize",
            ParameterId::FrameworkWeight => "frameworkWeight",
        }
    }
}

impl std::fmt::Display for ParameterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Direction of a parameter adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increase the parameter.
    Up,
    /// Decrease the parameter.
    Down,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// The concrete parameter vector of one proxy benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyParameters {
    /// Input data volume the proxy processes, in bytes.
    pub data_size_bytes: u64,
    /// Chunk size per worker task, in bytes.
    pub chunk_size_bytes: u64,
    /// Number of worker tasks.
    pub num_tasks: u32,
    /// Skew applied to the motif weights: 1.0 keeps the decomposition's
    /// execution ratios, values above 1.0 emphasise the dominant motif
    /// class, values below de-emphasise it.  Kept within ±10 % of neutral,
    /// as the paper allows.
    pub weight_skew: f64,
    /// Batch size for AI motifs.
    pub batch_size: u32,
    /// Tensor geometry for AI motifs (height, width, channels).
    pub geometry: (u32, u32, u32),
    /// Fraction of the proxy's work spent in the software-stack emulation
    /// component (GC-like memory management, runtime dispatch).
    pub framework_weight: f64,
    /// Whether the proxy spills intermediate data to disk (big data
    /// proxies do, AI proxies do not).
    pub spill_to_disk: bool,
}

/// Bounds that keep a tuned parameter vector sensible.
const MIN_DATA_SIZE: u64 = 4 << 20;
const MAX_DATA_SIZE: u64 = 8 << 30;
const MIN_CHUNK: u64 = 64 * 1024;
const MAX_CHUNK: u64 = 512 << 20;
const MAX_TASKS: u32 = 256;
const WEIGHT_SKEW_RANGE: (f64, f64) = (0.9, 1.1);
const FRAMEWORK_RANGE: (f64, f64) = (0.0, 0.85);

impl ProxyParameters {
    /// Default starting point for a big-data proxy over `data_size_bytes`.
    pub fn big_data(data_size_bytes: u64, num_tasks: u32) -> Self {
        Self {
            data_size_bytes,
            chunk_size_bytes: 8 << 20,
            num_tasks,
            weight_skew: 1.0,
            batch_size: 1,
            geometry: (1, 1, 1),
            framework_weight: 0.45,
            spill_to_disk: true,
        }
    }

    /// Default starting point for an AI proxy over `data_size_bytes`.
    pub fn ai(
        data_size_bytes: u64,
        num_tasks: u32,
        batch_size: u32,
        geometry: (u32, u32, u32),
    ) -> Self {
        Self {
            data_size_bytes,
            chunk_size_bytes: 8 << 20,
            num_tasks,
            weight_skew: 1.0,
            batch_size,
            geometry,
            framework_weight: 0.08,
            spill_to_disk: false,
        }
    }

    /// Reads one parameter as a float (used by the impact analysis).
    pub fn get(&self, id: ParameterId) -> f64 {
        match id {
            ParameterId::DataSize => self.data_size_bytes as f64,
            ParameterId::ChunkSize => self.chunk_size_bytes as f64,
            ParameterId::NumTasks => f64::from(self.num_tasks),
            ParameterId::Weight => self.weight_skew,
            ParameterId::BatchSize => f64::from(self.batch_size),
            ParameterId::FrameworkWeight => self.framework_weight,
        }
    }

    /// Returns a copy with `id` nudged in `direction` by one tuning step,
    /// clamped to its legal range.
    pub fn adjusted(&self, id: ParameterId, direction: Direction) -> Self {
        let mut next = *self;
        let up = direction == Direction::Up;
        match id {
            ParameterId::DataSize => {
                let factor = if up { 1.3 } else { 1.0 / 1.3 };
                next.data_size_bytes = ((self.data_size_bytes as f64 * factor) as u64)
                    .clamp(MIN_DATA_SIZE, MAX_DATA_SIZE);
            }
            ParameterId::ChunkSize => {
                let factor = if up { 2.0 } else { 0.5 };
                next.chunk_size_bytes =
                    ((self.chunk_size_bytes as f64 * factor) as u64).clamp(MIN_CHUNK, MAX_CHUNK);
            }
            ParameterId::NumTasks => {
                next.num_tasks = if up {
                    (self.num_tasks + self.num_tasks.max(2) / 2).min(MAX_TASKS)
                } else {
                    (self.num_tasks.saturating_sub(self.num_tasks / 3)).max(1)
                };
            }
            ParameterId::Weight => {
                let delta = if up { 0.05 } else { -0.05 };
                next.weight_skew =
                    (self.weight_skew + delta).clamp(WEIGHT_SKEW_RANGE.0, WEIGHT_SKEW_RANGE.1);
            }
            ParameterId::BatchSize => {
                next.batch_size = if up {
                    (self.batch_size * 2).min(1024)
                } else {
                    (self.batch_size / 2).max(1)
                };
            }
            ParameterId::FrameworkWeight => {
                let delta = if up { 0.1 } else { -0.1 };
                next.framework_weight =
                    (self.framework_weight + delta).clamp(FRAMEWORK_RANGE.0, FRAMEWORK_RANGE.1);
            }
        }
        next
    }

    /// The motif-level configuration this parameter vector implies.
    pub fn motif_config(&self) -> MotifConfig {
        MotifConfig {
            chunk_bytes: self.chunk_size_bytes,
            num_tasks: self.num_tasks,
            batch_size: self.batch_size,
            height: self.geometry.0,
            width: self.geometry.1,
            channels: self.geometry.2,
            filter_size: 3,
            spill_to_disk: self.spill_to_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_names_are_unique_and_match_table_i() {
        let mut names: Vec<&str> = ParameterId::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ParameterId::ALL.len());
        assert!(names.contains(&"dataSize"));
        assert!(names.contains(&"chunkSize"));
        assert!(names.contains(&"numTasks"));
        assert!(names.contains(&"batchSize"));
        assert!(names.contains(&"weight"));
    }

    #[test]
    fn adjustments_move_in_the_requested_direction_and_are_bounded() {
        let p = ProxyParameters::big_data(256 << 20, 8);
        for id in ParameterId::ALL {
            let up = p.adjusted(id, Direction::Up);
            let down = p.adjusted(id, Direction::Down);
            assert!(up.get(id) >= p.get(id), "{id} up");
            assert!(down.get(id) <= p.get(id), "{id} down");
        }
        // Repeated weight increases stay within the ±10 % window.
        let mut w = p;
        for _ in 0..10 {
            w = w.adjusted(ParameterId::Weight, Direction::Up);
        }
        assert!(w.weight_skew <= 1.1 + 1e-9);
    }

    #[test]
    fn num_tasks_never_reaches_zero() {
        let mut p = ProxyParameters::big_data(64 << 20, 2);
        for _ in 0..10 {
            p = p.adjusted(ParameterId::NumTasks, Direction::Down);
        }
        assert!(p.num_tasks >= 1);
    }

    #[test]
    fn motif_config_reflects_parameters() {
        let p = ProxyParameters::ai(128 << 20, 4, 64, (32, 32, 3));
        let c = p.motif_config();
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.num_tasks, 4);
        assert!(!c.spill_to_disk);
        assert_eq!((c.height, c.width, c.channels), (32, 32, 3));
    }

    #[test]
    fn direction_opposite_round_trips() {
        assert_eq!(Direction::Up.opposite(), Direction::Down);
        assert_eq!(Direction::Down.opposite().opposite(), Direction::Down);
    }
}
