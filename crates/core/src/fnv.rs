//! Crate-internal FNV-1a hashing shared by the tuning-cache fingerprints
//! and the suite-report digest.  (Kernel checksums moved to
//! `dmpb_motifs::kernel` with the motif registry.)

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice.
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over a word sequence (one mixing step per word).
pub(crate) fn hash_u64s<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    let mut h = OFFSET;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    }
    h
}
