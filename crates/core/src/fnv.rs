//! FNV-1a hashing shared by the tuning-cache fingerprints, the
//! suite-report digest and the scenario campaign engine's
//! content-addressed cell fingerprints.  (Kernel checksums moved to
//! `dmpb_motifs::kernel` with the motif registry.)
//!
//! The functions are deliberately tiny and dependency-free: every
//! fingerprint in the workspace — cluster configurations, tuner
//! configurations, campaign cells, stored results — goes through these two
//! mixers, so equal inputs hash identically across crates and across
//! processes.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over a word sequence (one mixing step per word).
pub fn hash_u64s<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    let mut h = OFFSET;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_input_sensitive() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_eq!(hash_u64s([1, 2, 3]), hash_u64s([1, 2, 3]));
        assert_ne!(hash_u64s([1, 2, 3]), hash_u64s([3, 2, 1]));
    }
}
