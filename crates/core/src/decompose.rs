//! Benchmark decomposing: from a workload's hotspot profile to motif
//! components with initial weights.
//!
//! The paper obtains hotspot functions through runtime tracing, system
//! profiling and hardware profiling, correlates them to code fragments and
//! selects the corresponding data-motif implementations, with initial
//! weights proportional to the hotspots' execution ratios (the TeraSort
//! example: 70 % sort, 10 % sampling, 20 % graph).  The workload models in
//! `dmpb-workloads` expose exactly that information (Table III), so the
//! decomposition step turns it into concrete [`MotifComponent`]s.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifKind};
use dmpb_workloads::workload::{Workload, WorkloadKind};

/// One selected motif implementation with its share of the proxy's work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifComponent {
    /// The selected motif implementation.
    pub motif: MotifKind,
    /// The motif class it was selected for.
    pub class: MotifClass,
    /// Initial weight (execution ratio share), normalised across all
    /// components of the decomposition.
    pub weight: f64,
}

/// The result of decomposing one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Which workload was decomposed.
    pub kind: WorkloadKind,
    /// Selected components with initial weights.
    pub components: Vec<MotifComponent>,
    /// Descriptor of the original workload's input data (the proxy keeps
    /// the same data type, distribution and sparsity).
    pub input: DataDescriptor,
    /// The class-level execution ratios the weights were derived from.
    pub class_ratios: Vec<(MotifClass, f64)>,
    /// The fork/join topology the workload declares for its motifs
    /// ([`Workload::dag_plan`]), validated to place exactly the selected
    /// components; falls back to a straight chain otherwise.
    pub plan: DagPlan,
}

impl Decomposition {
    /// Sum of component weights (should be ~1).
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }

    /// The class with the largest execution ratio.
    pub fn dominant_class(&self) -> Option<MotifClass> {
        self.class_ratios
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"))
            .map(|(c, _)| *c)
    }
}

/// Decomposes a workload into motif components with initial weights set by
/// execution ratios.
pub fn decompose(workload: &dyn Workload) -> Decomposition {
    let class_ratios = workload.motif_composition();
    let involved = workload.involved_motifs();

    let mut components = Vec::new();
    for &(class, ratio) in &class_ratios {
        let kinds: Vec<MotifKind> = involved
            .iter()
            .copied()
            .filter(|k| k.class() == class)
            .collect();
        if kinds.is_empty() {
            continue;
        }
        let share = ratio / kinds.len() as f64;
        for motif in kinds {
            components.push(MotifComponent {
                motif,
                class,
                weight: share,
            });
        }
    }

    // Merge duplicate motif selections (e.g. one class listed twice in the
    // composition) so every motif appears once with its summed weight —
    // both the DAG plan and the proxy's weight lookup key by motif.
    let mut merged: Vec<MotifComponent> = Vec::new();
    for c in components {
        match merged.iter_mut().find(|m| m.motif == c.motif) {
            Some(m) => m.weight += c.weight,
            None => merged.push(c),
        }
    }
    let mut components = merged;

    // Normalise in case some composition classes had no selected motif.
    let total: f64 = components.iter().map(|c| c.weight).sum();
    if total > 0.0 {
        for c in &mut components {
            c.weight /= total;
        }
    }

    // Adopt the workload's declared fork/join topology when it places
    // exactly the selected components; otherwise fall back to a chain so a
    // plan drifting out of sync with the decomposition degrades gracefully
    // instead of dropping or double-counting motifs.
    let motifs: Vec<MotifKind> = components.iter().map(|c| c.motif).collect();
    let declared = workload.dag_plan();
    let plan = if declared.covers_exactly(&motifs) {
        declared
    } else {
        DagPlan::chain(&motifs)
    };

    Decomposition {
        kind: workload.kind(),
        components,
        input: workload.input_descriptor(),
        class_ratios,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::{DataClass, Distribution};
    use dmpb_perfmodel::profile::OpProfile;
    use dmpb_workloads::{all_workloads, ClusterConfig};

    /// A degenerate workload whose composition lists one class twice, so
    /// its only motif would be selected twice without the merge step.
    #[derive(Debug)]
    struct DoubledSort;

    impl Workload for DoubledSort {
        fn kind(&self) -> WorkloadKind {
            WorkloadKind::TeraSort
        }
        fn pattern(&self) -> &'static str {
            "test double"
        }
        fn input_descriptor(&self) -> DataDescriptor {
            DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform)
        }
        fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
            vec![(MotifClass::Sort, 0.5), (MotifClass::Sort, 0.5)]
        }
        fn involved_motifs(&self) -> Vec<MotifKind> {
            vec![MotifKind::QuickSort]
        }
        fn per_node_profile(&self, _cluster: &ClusterConfig) -> OpProfile {
            OpProfile::new("test-double")
        }
    }

    #[test]
    fn duplicate_motif_selections_are_merged_not_duplicated() {
        let d = decompose(&DoubledSort);
        assert_eq!(d.components.len(), 1, "duplicates must merge");
        assert!((d.total_weight() - 1.0).abs() < 1e-9);
        // The chain fallback (and any declared plan) keys by motif, so the
        // merged decomposition must still produce a valid plan.
        assert!(d.plan.covers_exactly(&[MotifKind::QuickSort]));
    }

    #[test]
    fn every_workload_decomposes_into_normalised_components() {
        for w in all_workloads() {
            let d = decompose(w.as_ref());
            assert!(!d.components.is_empty(), "{}", w.name());
            assert!((d.total_weight() - 1.0).abs() < 1e-9, "{}", w.name());
            assert!(d.dominant_class().is_some());
        }
    }

    #[test]
    fn terasort_decomposition_matches_the_paper_example() {
        let workloads = all_workloads();
        let terasort = workloads
            .iter()
            .find(|w| w.kind() == WorkloadKind::TeraSort)
            .unwrap();
        let d = decompose(terasort.as_ref());
        assert_eq!(d.dominant_class(), Some(MotifClass::Sort));
        // Sort components together carry 70 % of the weight.
        let sort_weight: f64 = d
            .components
            .iter()
            .filter(|c| c.class == MotifClass::Sort)
            .map(|c| c.weight)
            .sum();
        assert!(
            (sort_weight - 0.7).abs() < 1e-6,
            "sort weight {sort_weight}"
        );
    }

    #[test]
    fn ai_workloads_select_ai_motifs() {
        for w in all_workloads() {
            let d = decompose(w.as_ref());
            if w.kind().is_ai() {
                assert!(d.components.iter().all(|c| c.motif.is_ai()), "{}", w.name());
            } else {
                assert!(
                    d.components.iter().all(|c| !c.motif.is_ai()),
                    "{}",
                    w.name()
                );
            }
        }
    }
}
