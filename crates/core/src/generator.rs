//! End-to-end proxy benchmark generation (Fig. 1 of the paper).
//!
//! The generated proxy carries the workload's declared fork/join
//! [`DagPlan`](dmpb_motifs::DagPlan) through the decomposition, so
//! [`GenerationReport::dag`] yields the executable branching DAG the
//! stage-parallel [`crate::executor::DagExecutor`] schedules.

use dmpb_metrics::{AccuracyReport, MetricVector};
use dmpb_workloads::workload::Workload;
use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};

use crate::autotune::{AutoTuner, TunerStrategy};
use crate::decompose::{decompose, Decomposition};
use crate::features::{initial_parameters, FeatureSelection};
use crate::proxy::ProxyBenchmark;

/// The full record of generating one qualified proxy benchmark.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// The workload the proxy stands in for.
    pub kind: WorkloadKind,
    /// The decomposition that seeded the proxy.
    pub decomposition: Decomposition,
    /// The (tuned) proxy benchmark.
    pub proxy: ProxyBenchmark,
    /// Metric vector of the original workload on the generation cluster.
    pub real_metrics: MetricVector,
    /// Metric vector of the qualified proxy.
    pub proxy_metrics: MetricVector,
    /// Per-metric accuracy (Equation 3).
    pub accuracy: AccuracyReport,
    /// Whether the proxy met the deviation threshold on every metric.
    pub qualified: bool,
    /// Auto-tuning iterations spent.
    pub iterations: usize,
    /// Runtime speedup of the proxy over the original (Table VI).
    pub speedup: f64,
}

impl GenerationReport {
    /// The tuned proxy's executable DAG (the workload's declared fork/join
    /// topology with effectively weighted motif edges).
    pub fn dag(&self) -> crate::dag::ProxyDag {
        self.proxy.dag()
    }
}

/// Drives decomposition, feature selection and auto-tuning for a workload
/// on a given cluster.
#[derive(Debug, Clone)]
pub struct ProxyGenerator {
    /// The cluster the original workload is profiled on.
    pub cluster: ClusterConfig,
    /// Metric targets and deviation threshold.
    pub features: FeatureSelection,
    /// Auto-tuner configuration.
    pub tuner: AutoTuner,
}

impl ProxyGenerator {
    /// A generator with the paper's defaults on the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            features: FeatureSelection::paper_default(),
            tuner: AutoTuner::default(),
        }
    }

    /// Uses the greedy baseline tuner instead of the decision tree
    /// (ablation).
    pub fn with_greedy_tuner(mut self) -> Self {
        self.tuner.strategy = TunerStrategy::Greedy;
        self
    }

    /// Generates a qualified proxy for `workload`.
    pub fn generate(&self, workload: &dyn Workload) -> GenerationReport {
        // 1. Profile the original workload (tracing & profiling).
        let real_metrics = workload.measure(&self.cluster);

        // 2. Decompose into motif components with initial weights.
        let decomposition = decompose(workload);

        // 3. Feature selection: metrics + initial parameters.
        let parameters = initial_parameters(workload, &self.cluster);
        let initial = ProxyBenchmark::from_decomposition(&decomposition, parameters);

        // 4./5. Adjusting + feedback stages.
        let outcome = self.tuner.tune(
            initial,
            &real_metrics,
            &self.cluster.node.arch,
            &self.features.metrics,
        );

        let speedup = if outcome.metrics.runtime_secs > 0.0 {
            real_metrics.runtime_secs / outcome.metrics.runtime_secs
        } else {
            f64::INFINITY
        };

        GenerationReport {
            kind: workload.kind(),
            decomposition,
            proxy: outcome.proxy,
            real_metrics,
            proxy_metrics: outcome.metrics,
            accuracy: outcome.accuracy,
            qualified: outcome.qualified,
            iterations: outcome.iterations,
            speedup,
        }
    }

    /// Generates a qualified proxy for one of the eight suite workloads in
    /// its reference (Section III-style) configuration.
    pub fn generate_kind(&self, kind: WorkloadKind) -> GenerationReport {
        self.generate(workload_by_kind(kind).as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_terasort_proxy_is_accurate_and_much_faster() {
        let generator = ProxyGenerator::new(ClusterConfig::five_node_westmere());
        let report = generator.generate_kind(WorkloadKind::TeraSort);
        assert!(
            report.accuracy.average() > 0.8,
            "average accuracy {}",
            report.accuracy.average()
        );
        assert!(report.speedup > 20.0, "speedup {}", report.speedup);
        assert_eq!(report.kind, WorkloadKind::TeraSort);
        assert!(!report.decomposition.components.is_empty());
    }

    #[test]
    fn greedy_generator_also_produces_a_proxy() {
        let generator =
            ProxyGenerator::new(ClusterConfig::five_node_westmere()).with_greedy_tuner();
        let report = generator.generate_kind(WorkloadKind::AlexNet);
        assert!(
            report.accuracy.average() > 0.6,
            "accuracy {}",
            report.accuracy.average()
        );
        assert!(report.speedup > 10.0, "speedup {}", report.speedup);
    }
}
