//! End-to-end tests of the `campaign` binary's gate semantics, pinned
//! through the real CLI so exit codes and messages are covered.

use std::process::Command;

/// A scenario whose filters exclude every matrix cell — legitimate (a
/// sweep axis can exclude everything on some configurations), so the
/// hit-ratio gate must be *skipped with a notice*, not failed with a
/// misleading "cold store" message.
const FULLY_FILTERED: &str = r#"
[scenario]
name = "fully-filtered"
description = "every cell excluded"

[axes]
workloads = ["TeraSort"]
clusters = ["five-node-westmere"]

[[exclude]]
workload = "TeraSort"
"#;

fn campaign() -> Command {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
}

fn scenario_file(tag: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dmpb-campaign-cli-{tag}-{}.toml",
        std::process::id()
    ));
    std::fs::write(&path, source).unwrap();
    path
}

#[test]
fn empty_campaign_passes_the_hit_ratio_gate_with_a_notice() {
    let path = scenario_file("empty-gate", FULLY_FILTERED);
    let output = campaign()
        .arg(&path)
        .args(["--expect-hit-ratio", "1.0"])
        .output()
        .expect("campaign binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "a fully filtered campaign must not fail the hit-ratio gate\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("gate skipped") && stdout.contains("0 hits, 0 misses"),
        "the skip must be announced with the hit/miss counts\nstdout: {stdout}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn cold_run_fails_the_hit_ratio_gate_with_counts_in_the_message() {
    let source = r#"
[scenario]
name = "one-cell"

[axes]
workloads = ["TeraSort"]
clusters = ["five-node-westmere"]
"#;
    let path = scenario_file("cold-gate", source);
    let output = campaign()
        .arg(&path)
        .args(["--expect-hit-ratio", "0.9"])
        .output()
        .expect("campaign binary runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "a cold run must fail a 0.9 hit-ratio gate\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("0 of 1 cells store-served") && stderr.contains("misses"),
        "the failure must say hits/misses, not just a ratio\nstderr: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn store_shards_flag_runs_sharded_end_to_end_with_compaction() {
    let source = r#"
[scenario]
name = "sharded-cli"

[axes]
workloads = ["TeraSort"]
clusters = ["five-node-westmere"]
elements = [600]
seeds = [7, 8]
"#;
    let path = scenario_file("sharded", source);
    let dir = std::env::temp_dir().join(format!("dmpb-campaign-cli-shards-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");

    // Cold run creates the sharded layout (segments + sidecar).
    let output = campaign()
        .arg(&path)
        .args(["--store", store.to_str().unwrap(), "--store-shards", "4"])
        .output()
        .expect("campaign binary runs");
    assert!(
        output.status.success(),
        "cold sharded run failed\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        store.is_dir(),
        "--store-shards must create a store directory"
    );
    assert!(store.join("index.jsonl").exists(), "sidecar index missing");
    assert!(
        store.join("segment-0.jsonl").exists(),
        "segment files missing"
    );

    // Warm run is fully store-served — sharding must not cost a hit.
    let output = campaign()
        .arg(&path)
        .args([
            "--store",
            store.to_str().unwrap(),
            "--expect-hit-ratio",
            "1.0",
        ])
        .output()
        .expect("campaign binary runs");
    assert!(
        output.status.success(),
        "warm sharded run missed the store\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    // Maintenance mode: sharded compaction reports per-segment stats.
    let output = campaign()
        .args(["--compact-store", store.to_str().unwrap()])
        .output()
        .expect("campaign binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "sharded compaction failed\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("segment 0:") && stdout.contains("sidecar index rebuilt"),
        "compaction must report per-segment stats\nstdout: {stdout}"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}
