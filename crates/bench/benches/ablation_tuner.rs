//! Ablation: decision-tree tuner vs greedy tuner — how much accuracy each
//! reaches on the TeraSort proxy within a fixed iteration budget.
use criterion::{criterion_group, criterion_main, Criterion};
use dmpb_core::autotune::{AutoTuner, TunerStrategy};
use dmpb_core::decompose::decompose;
use dmpb_core::features::{initial_parameters, FeatureSelection};
use dmpb_core::ProxyBenchmark;
use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};
use std::hint::black_box;

fn bench_tuner(c: &mut Criterion) {
    let cluster = ClusterConfig::five_node_westmere();
    let workload = workload_by_kind(WorkloadKind::TeraSort);
    let target = workload.measure(&cluster);
    let proxy = ProxyBenchmark::from_decomposition(
        &decompose(workload.as_ref()),
        initial_parameters(workload.as_ref(), &cluster),
    );
    let metrics = FeatureSelection::paper_default().metrics;

    let mut group = c.benchmark_group("ablation_tuner");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, strategy) in [
        ("decision_tree", TunerStrategy::DecisionTree),
        ("greedy", TunerStrategy::Greedy),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let tuner = AutoTuner {
                    strategy,
                    max_iterations: 3,
                    ..AutoTuner::default()
                };
                let outcome = tuner.tune(proxy.clone(), &target, &cluster.node.arch, &metrics);
                black_box(outcome.accuracy.average())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
