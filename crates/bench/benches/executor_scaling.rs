//! Worker-count scaling of the DAG executor: the barrier-free
//! work-stealing scheduler vs the PR 3 per-stage-spawn scheduler, swept
//! at 1/2/4/8 workers over the two widest DAGs of the suite (TensorFlow
//! Inception v3's parallel towers and Spark TeraSort's wide-dependency
//! fork/join).
//!
//! The comparison every PR 4 claim rests on: at equal worker counts the
//! work-stealing executor must beat the stage-barrier executor on at
//! least one branching DAG, because it neither spawns threads per stage
//! nor stalls a stage on its slowest branch.

use criterion::{criterion_group, criterion_main, Criterion};
use dmpb_core::decompose::decompose;
use dmpb_core::executor::{DagExecutor, SchedulePolicy};
use dmpb_core::features::initial_parameters;
use dmpb_core::ProxyBenchmark;
use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};
use std::hint::black_box;

const ELEMENTS: usize = 20_000;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn proxy_for(kind: WorkloadKind) -> ProxyBenchmark {
    let cluster = ClusterConfig::five_node_westmere();
    let workload = workload_by_kind(kind);
    ProxyBenchmark::from_decomposition(
        &decompose(workload.as_ref()),
        initial_parameters(workload.as_ref(), &cluster),
    )
}

/// Superkernel fusion vs plain dispatch on the workloads whose DAG plans
/// contain a registered fusable chain (QuickSort→MergeSort in Hadoop
/// K-means, GraphConstruct→GraphTraversal in the PageRank variants and
/// Hadoop TeraSort).  Small element counts, where per-task scheduling
/// overhead is the dominant cost fusion removes; the checksum assertions
/// pin the PR 7 claim that fusion is digest-invisible.
fn bench_superkernel_fusion(c: &mut Criterion) {
    for kind in [
        WorkloadKind::TeraSort,
        WorkloadKind::KMeans,
        WorkloadKind::PageRank,
        WorkloadKind::SparkPageRank,
    ] {
        let proxy = proxy_for(kind);
        let dag = proxy.dag();
        let fused = DagExecutor::new();
        let unfused = DagExecutor::new().with_fusion(false);
        assert!(
            fused.planned_fusions(&dag) > 0,
            "{kind} must plan at least one fusion"
        );
        assert_eq!(
            fused.execute(&dag, 2_048, 1).checksum,
            unfused.execute(&dag, 2_048, 1).checksum,
            "fusion must not change the digest"
        );

        let mut group = c.benchmark_group(format!("superkernel_fusion/{kind}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.bench_function("fused", |b| {
            b.iter(|| black_box(fused.execute(&dag, 2_048, 1).checksum))
        });
        group.bench_function("unfused", |b| {
            b.iter(|| black_box(unfused.execute(&dag, 2_048, 1).checksum))
        });
        group.finish();
    }
}

fn bench_executor_scaling(c: &mut Criterion) {
    for kind in [WorkloadKind::InceptionV3, WorkloadKind::SparkTeraSort] {
        let proxy = proxy_for(kind);
        let dag = proxy.dag();
        assert!(dag.is_branching(), "{kind} must expose a branching DAG");

        let mut group = c.benchmark_group(format!("executor_scaling/{kind}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));

        let reference = DagExecutor::new().execute(&dag, ELEMENTS, 1).checksum;
        for workers in WORKER_SWEEP {
            let stealing = DagExecutor::new().with_max_parallel(workers);
            let barrier = DagExecutor::new()
                .with_policy(SchedulePolicy::StageBarrier)
                .with_max_parallel(workers);
            // The digest must not depend on policy or worker count; only
            // wall-clock may.
            assert_eq!(stealing.execute(&dag, ELEMENTS, 1).checksum, reference);
            assert_eq!(barrier.execute(&dag, ELEMENTS, 1).checksum, reference);

            group.bench_function(format!("work_stealing/{workers}w"), |b| {
                b.iter(|| black_box(stealing.execute(&dag, ELEMENTS, 1).checksum))
            });
            group.bench_function(format!("stage_barrier/{workers}w"), |b| {
                b.iter(|| black_box(barrier.execute(&dag, ELEMENTS, 1).checksum))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_executor_scaling, bench_superkernel_fusion);
criterion_main!(benches);
