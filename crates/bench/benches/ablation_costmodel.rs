//! Ablation: does the analytic cost model scale the way the real kernel's
//! wall-clock does?  Benchmarks the quick-sort kernel at two sizes and
//! reports alongside the cost model's predicted instruction ratio.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmpb_datagen::text::TextGenerator;
use dmpb_motifs::bigdata::sort;
use dmpb_motifs::{MotifConfig, MotifKind};
use std::hint::black_box;

fn bench_costmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_costmodel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 40_000] {
        let keys = TextGenerator::new(1).generate(n).keys();
        group.bench_with_input(
            BenchmarkId::new("quick_sort_wallclock", n),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut k = keys.clone();
                    sort::quick_sort(&mut k);
                    black_box(k.len())
                })
            },
        );
        // Print the cost-model prediction once per size for comparison.
        let data = TextGenerator::descriptor((n * 100) as u64);
        let profile = MotifKind::QuickSort.cost_profile(&data, &MotifConfig::big_data_default());
        eprintln!(
            "cost-model instructions for n={n}: {}",
            profile.total_instructions()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_costmodel);
criterion_main!(benches);
