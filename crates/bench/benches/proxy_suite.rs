//! Criterion benches over the generated proxies: real execution of the
//! sample kernels and measurement under the performance model.
use criterion::{criterion_group, criterion_main, Criterion};
use dmpb_core::decompose::decompose;
use dmpb_core::executor::DagExecutor;
use dmpb_core::features::initial_parameters;
use dmpb_core::runner::SuiteRunner;
use dmpb_core::ProxyBenchmark;
use dmpb_perfmodel::ArchProfile;
use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};
use std::hint::black_box;

fn bench_proxies(c: &mut Criterion) {
    let cluster = ClusterConfig::five_node_westmere();
    let arch = ArchProfile::westmere_e5645();
    let mut group = c.benchmark_group("proxy_suite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in WorkloadKind::ALL {
        let workload = workload_by_kind(kind);
        let proxy = ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        );
        group.bench_function(format!("execute_sample/{kind}"), |b| {
            b.iter(|| black_box(proxy.execute_sample(2_000, 1).checksum))
        });
        group.bench_function(format!("measure/{kind}"), |b| {
            b.iter(|| black_box(proxy.measure(&arch).runtime_secs))
        });
    }
    group.finish();
}

/// Linear-chain vs branching-DAG execution of one Spark proxy: the same
/// motif kernels and weights, scheduled as a straight pipeline vs the
/// declared wide-dependency fork/join DAG, serial vs stage-parallel — so
/// the parallel-branch win (or regression) is visible in the suite output.
fn bench_dag_executor(c: &mut Criterion) {
    let cluster = ClusterConfig::five_node_westmere();
    let workload = workload_by_kind(WorkloadKind::SparkTeraSort);
    let proxy = ProxyBenchmark::from_decomposition(
        &decompose(workload.as_ref()),
        initial_parameters(workload.as_ref(), &cluster),
    );
    let chain = proxy.chain_dag();
    let branching = proxy.dag();
    assert!(branching.is_branching() && !chain.is_branching());

    let serial = DagExecutor::new();
    let parallel = DagExecutor::new().with_max_parallel(4);
    // The digest must not depend on the schedule; only wall-clock may.
    assert_eq!(
        serial.execute(&branching, 20_000, 1).checksum,
        parallel.execute(&branching, 20_000, 1).checksum
    );

    let mut group = c.benchmark_group("dag_executor/spark_terasort");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("linear_chain/serial", |b| {
        b.iter(|| black_box(serial.execute(&chain, 20_000, 1).checksum))
    });
    group.bench_function("branching_dag/serial", |b| {
        b.iter(|| black_box(serial.execute(&branching, 20_000, 1).checksum))
    });
    group.bench_function("branching_dag/parallel4", |b| {
        b.iter(|| black_box(parallel.execute(&branching, 20_000, 1).checksum))
    });
    group.finish();
}

fn bench_suite_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_runner");
    group.sample_size(3);
    // Cold: every iteration tunes all eight workloads from scratch.
    group.bench_function("run_all_cold", |b| {
        b.iter(|| {
            let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
            black_box(runner.run_all().digest())
        })
    });
    // Cached: tuning is memoized; only sample execution repeats.
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
    runner.run_all();
    group.bench_function("run_all_cached", |b| {
        b.iter(|| black_box(runner.run_all().digest()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_proxies,
    bench_dag_executor,
    bench_suite_runner
);
criterion_main!(benches);
