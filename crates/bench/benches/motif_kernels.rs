//! Criterion wall-clock benches over the real motif kernels (one group per
//! motif class).
use criterion::{criterion_group, criterion_main, Criterion};
use dmpb_datagen::graph::{GraphGenerator, GraphSpec};
use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::TextGenerator;
use dmpb_motifs::ai::convolution::{conv2d, FilterBank, Padding};
use dmpb_motifs::ai::pooling::max_pool2d;
use dmpb_motifs::bigdata::{graph_ops, logic, sort, statistics, transform};
use dmpb_motifs::{BufferPool, MotifKind, MotifRegistry};
use std::hint::black_box;

/// The registered superkernels against their unfused pairs, at equal
/// arguments — the shared-computation case (one key generation, one graph
/// build) that profile-guided fusion exploits.  Checksum identity is
/// asserted before timing, so the comparison is apples to apples.
fn bench_fused_pairs(c: &mut Criterion) {
    let registry = MotifRegistry::global();
    let pool = BufferPool::new();
    let mut group = c.benchmark_group("fused_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for (first, second, n, label) in [
        (
            MotifKind::QuickSort,
            MotifKind::MergeSort,
            20_000,
            "quick_merge_sort_20k",
        ),
        (
            MotifKind::GraphConstruct,
            MotifKind::GraphTraversal,
            10_000,
            "graph_construct_traversal_10k",
        ),
    ] {
        let fused = registry
            .fused(first, second)
            .expect("superkernel is registered");
        let unfused = (
            registry.kernel(first).execute(n, 1, &pool),
            registry.kernel(second).execute(n, 1, &pool),
        );
        assert_eq!(
            fused.execute((n, 1), (n, 1), &pool),
            unfused,
            "superkernel must be checksum-identical to its pair"
        );

        group.bench_function(format!("{label}/fused"), |b| {
            b.iter(|| black_box(fused.execute((n, 1), (n, 1), &pool)))
        });
        group.bench_function(format!("{label}/unfused"), |b| {
            b.iter(|| {
                black_box((
                    registry.kernel(first).execute(n, 1, &pool),
                    registry.kernel(second).execute(n, 1, &pool),
                ))
            })
        });
    }
    group.finish();
}

fn bench_motifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("motif_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let keys = TextGenerator::new(1).generate(20_000).keys();
    group.bench_function("sort/quick_sort_20k", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            sort::quick_sort(&mut k);
            black_box(k.len())
        })
    });
    group.bench_function("sort/merge_sort_20k", |b| {
        b.iter(|| black_box(sort::merge_sort(&keys).len()))
    });

    let graph = GraphGenerator::new(GraphSpec::power_law(10_000, 8, 2)).generate();
    group.bench_function("graph/bfs_10k_vertices", |b| {
        b.iter(|| black_box(graph_ops::traversal_reach(&graph, 0)))
    });
    let ranks = vec![1.0 / 10_000.0; 10_000];
    group.bench_function("graph/pagerank_iteration", |b| {
        b.iter(|| black_box(graph_ops::pagerank_iteration(&graph, &ranks, 0.85).len()))
    });

    let signal: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.01).sin()).collect();
    group.bench_function("transform/fft_8192", |b| {
        b.iter(|| black_box(transform::fft_real(&signal).len()))
    });

    let payload = TextGenerator::new(3).generate(5_000);
    group.bench_function("logic/md5_500kb", |b| {
        b.iter(|| black_box(logic::md5(payload.as_bytes())))
    });

    let values: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("statistics/count_average_100k", |b| {
        b.iter(|| black_box(statistics::count_average(&values)))
    });

    let m = MatrixSpec::dense(96, 96, 5).generate_dense();
    group.bench_function("matrix/matmul_96", |b| {
        b.iter(|| black_box(m.multiply(&m).frobenius_norm()))
    });

    let image = ImageGenerator::new(7).generate(TensorShape::new(4, 3, 32, 32), TensorLayout::Nchw);
    let filters = FilterBank::constant(16, 3, 3, 0.05);
    group.bench_function("ai/conv2d_32x32", |b| {
        b.iter(|| black_box(conv2d(&image, &filters, 1, Padding::Same).as_slice().len()))
    });
    group.bench_function("ai/max_pool_32x32", |b| {
        b.iter(|| black_box(max_pool2d(&image, 2, 2).as_slice().len()))
    });

    group.finish();
}

criterion_group!(benches, bench_motifs, bench_fused_pairs);
criterion_main!(benches);
