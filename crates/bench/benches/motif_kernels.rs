//! Criterion wall-clock benches over the real motif kernels (one group per
//! motif class).
use criterion::{criterion_group, criterion_main, Criterion};
use dmpb_datagen::graph::{GraphGenerator, GraphSpec};
use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::TextGenerator;
use dmpb_motifs::ai::convolution::{conv2d, FilterBank, Padding};
use dmpb_motifs::ai::pooling::max_pool2d;
use dmpb_motifs::bigdata::{graph_ops, logic, sort, statistics, transform};
use std::hint::black_box;

fn bench_motifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("motif_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let keys = TextGenerator::new(1).generate(20_000).keys();
    group.bench_function("sort/quick_sort_20k", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            sort::quick_sort(&mut k);
            black_box(k.len())
        })
    });
    group.bench_function("sort/merge_sort_20k", |b| {
        b.iter(|| black_box(sort::merge_sort(&keys).len()))
    });

    let graph = GraphGenerator::new(GraphSpec::power_law(10_000, 8, 2)).generate();
    group.bench_function("graph/bfs_10k_vertices", |b| {
        b.iter(|| black_box(graph_ops::traversal_reach(&graph, 0)))
    });
    let ranks = vec![1.0 / 10_000.0; 10_000];
    group.bench_function("graph/pagerank_iteration", |b| {
        b.iter(|| black_box(graph_ops::pagerank_iteration(&graph, &ranks, 0.85).len()))
    });

    let signal: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.01).sin()).collect();
    group.bench_function("transform/fft_8192", |b| {
        b.iter(|| black_box(transform::fft_real(&signal).len()))
    });

    let payload = TextGenerator::new(3).generate(5_000);
    group.bench_function("logic/md5_500kb", |b| {
        b.iter(|| black_box(logic::md5(payload.as_bytes())))
    });

    let values: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("statistics/count_average_100k", |b| {
        b.iter(|| black_box(statistics::count_average(&values)))
    });

    let m = MatrixSpec::dense(96, 96, 5).generate_dense();
    group.bench_function("matrix/matmul_96", |b| {
        b.iter(|| black_box(m.multiply(&m).frobenius_norm()))
    });

    let image = ImageGenerator::new(7).generate(TensorShape::new(4, 3, 32, 32), TensorLayout::Nchw);
    let filters = FilterBank::constant(16, 3, 3, 0.05);
    group.bench_function("ai/conv2d_32x32", |b| {
        b.iter(|| black_box(conv2d(&image, &filters, 1, Padding::Same).as_slice().len()))
    });
    group.bench_function("ai/max_pool_32x32", |b| {
        b.iter(|| black_box(max_pool2d(&image, 2, 2).as_slice().len()))
    });

    group.finish();
}

criterion_group!(benches, bench_motifs);
criterion_main!(benches);
