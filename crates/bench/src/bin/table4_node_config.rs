//! Table IV: node configuration of the modelled Xeon E5645 cluster.
use dmpb_metrics::table::TextTable;
use dmpb_perfmodel::ArchProfile;

fn main() {
    for arch in [
        ArchProfile::westmere_e5645(),
        ArchProfile::haswell_e5_2620_v3(),
    ] {
        let mut t = TextTable::new(format!("Table IV — {}", arch.name), &["item", "value"]);
        t.add_row(&["cores/socket".into(), arch.cores_per_socket.to_string()]);
        t.add_row(&[
            "frequency".into(),
            format!("{:.2} GHz", arch.frequency_hz / 1e9),
        ]);
        t.add_row(&[
            "L1 I/D".into(),
            format!(
                "{} KB / {} KB",
                arch.l1i.size_bytes / 1024,
                arch.l1d.size_bytes / 1024
            ),
        ]);
        t.add_row(&["L2".into(), format!("{} KB", arch.l2.size_bytes / 1024)]);
        t.add_row(&[
            "L3".into(),
            format!("{} MB", arch.l3.size_bytes / (1024 * 1024)),
        ]);
        println!("{}", t.render());
    }
}
