//! Fig. 8: one Proxy K-means driven by sparse and dense inputs stays
//! accurate against the corresponding real runs.
use dmpb_core::generator::ProxyGenerator;
use dmpb_metrics::table::{fmt_percent, TextTable};
use dmpb_metrics::{AccuracyReport, MetricId};
use dmpb_workloads::hadoop::KMeans;
use dmpb_workloads::workload::Workload;
use dmpb_workloads::ClusterConfig;

fn main() {
    let cluster = ClusterConfig::five_node_westmere();
    // Generate ONE proxy, from the sparse configuration only.
    let report = ProxyGenerator::new(cluster).generate(&KMeans::paper_configuration());
    let proxy = &report.proxy;

    // Drive the same proxy with dense input data and compare against the
    // dense real run.
    let dense_real = KMeans::dense_configuration().measure(&cluster);
    let dense_proxy = proxy
        .with_input(
            KMeans::dense_configuration()
                .input_descriptor()
                .scaled_to(proxy.parameters().data_size_bytes),
        )
        .measure(&cluster.node.arch);
    let dense_accuracy = AccuracyReport::compare(&dense_real, &dense_proxy, &MetricId::TUNABLE);

    let mut t = TextTable::new(
        "Fig. 8 — Proxy K-means accuracy under different input sparsity",
        &[
            "input",
            "average accuracy (paper)",
            "average accuracy (measured)",
        ],
    );
    t.add_row(&[
        "sparse (90%)".into(),
        ">91%".into(),
        fmt_percent(report.accuracy.average()),
    ]);
    t.add_row(&[
        "dense (0%)".into(),
        ">91%".into(),
        fmt_percent(dense_accuracy.average()),
    ]);
    println!("{}", t.render());
}
