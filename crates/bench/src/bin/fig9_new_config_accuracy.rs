//! Fig. 9: accuracy on the re-configured three-node cluster.
use dmpb_bench::{paper_value, PAPER_FIG9_ACCURACY};
use dmpb_core::generator::ProxyGenerator;
use dmpb_metrics::table::{fmt_percent, TextTable};
use dmpb_workloads::hadoop::{KMeans, PageRank, TeraSort};
use dmpb_workloads::tensorflow::{AlexNet, InceptionV3};
use dmpb_workloads::workload::Workload;
use dmpb_workloads::ClusterConfig;

fn main() {
    let cluster = ClusterConfig::three_node_westmere_64gb();
    let generator = ProxyGenerator::new(cluster);
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(TeraSort::paper_configuration()),
        Box::new(KMeans::paper_configuration()),
        Box::new(PageRank::paper_configuration()),
        Box::new(AlexNet::reconfigured(3_000)),
        Box::new(InceptionV3::reconfigured(200)),
    ];
    let mut t = TextTable::new(
        "Fig. 9 — Accuracy on the new cluster configuration (3 nodes, 64 GB)",
        &["workload", "paper", "measured"],
    );
    for w in workloads {
        let r = generator.generate(w.as_ref());
        t.add_row(&[
            r.kind.to_string(),
            fmt_percent(paper_value(&PAPER_FIG9_ACCURACY, r.kind)),
            fmt_percent(r.accuracy.average()),
        ]);
    }
    println!("{}", t.render());
}
