//! Table V: the system and micro-architectural metric catalogue.
use dmpb_metrics::table::TextTable;
use dmpb_metrics::MetricId;

fn main() {
    let mut t = TextTable::new(
        "Table V — System and micro-architectural metrics",
        &["group", "metric"],
    );
    for id in MetricId::ALL {
        let group = if id.is_system() {
            "system"
        } else {
            "micro-architectural"
        };
        t.add_str_row(&[group, id.name()]);
    }
    println!("{}", t.render());
}
