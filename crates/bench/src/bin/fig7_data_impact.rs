//! Fig. 7: impact of input-data sparsity on Hadoop K-means memory bandwidth.
use dmpb_metrics::table::TextTable;
use dmpb_workloads::hadoop::KMeans;
use dmpb_workloads::workload::Workload;
use dmpb_workloads::ClusterConfig;

fn main() {
    let cluster = ClusterConfig::five_node_westmere();
    let sparse = KMeans::paper_configuration().measure(&cluster);
    let dense = KMeans::dense_configuration().measure(&cluster);
    let mut t = TextTable::new(
        "Fig. 7 — Hadoop K-means memory bandwidth, sparse (90%) vs dense (0%) input",
        &["metric", "sparse", "dense"],
    );
    t.add_row(&[
        "read bw (MB/s)".into(),
        format!("{:.0}", sparse.mem_read_bw_mbps),
        format!("{:.0}", dense.mem_read_bw_mbps),
    ]);
    t.add_row(&[
        "write bw (MB/s)".into(),
        format!("{:.0}", sparse.mem_write_bw_mbps),
        format!("{:.0}", dense.mem_write_bw_mbps),
    ]);
    t.add_row(&[
        "total bw (MB/s)".into(),
        format!("{:.0}", sparse.mem_total_bw_mbps()),
        format!("{:.0}", dense.mem_total_bw_mbps()),
    ]);
    t.add_row(&[
        "runtime (s)".into(),
        format!("{:.0}", sparse.runtime_secs),
        format!("{:.0}", dense.runtime_secs),
    ]);
    println!("{}", t.render());
    println!("Paper observation: sparse bandwidth is roughly half of dense bandwidth.");
}
