//! Fig. 10: runtime speedup across Westmere and Haswell processors for the
//! real workloads and their proxies, rendered from the
//! `cross-architecture` campaign: proxies tuned once on the five-node
//! Westmere cluster, each workload measured under both architecture
//! overrides of the three-node cluster (the engine owns that sweep; this
//! binary pairs the two cells per workload and prints the ratios).
use dmpb_bench::{fmt_paper_or_dash, paper_value, run_campaign, PAPER_FIG10_SPEEDUP};
use dmpb_metrics::table::TextTable;
use dmpb_scenario::builtin;
use dmpb_workloads::WorkloadKind;

fn main() {
    let (_, report) = run_campaign(&builtin::cross_architecture());
    let mut t = TextTable::new(
        "Fig. 10 — Runtime speedup across Westmere and Haswell",
        &[
            "workload",
            "real speedup (paper)",
            "real speedup (model)",
            "proxy speedup (model)",
        ],
    );
    for kind in WorkloadKind::ALL {
        let cell_on = |arch: &str| {
            report
                .cells()
                .find(|c| c.workload == kind && c.architecture == arch)
                .unwrap_or_else(|| panic!("campaign covers {kind} on {arch}"))
        };
        let westmere = cell_on("westmere");
        let haswell = cell_on("haswell");
        let real_speedup = westmere.cell_real_runtime_secs / haswell.cell_real_runtime_secs;
        let proxy_speedup = westmere.cell_proxy_runtime_secs / haswell.cell_proxy_runtime_secs;
        t.add_row(&[
            kind.to_string(),
            fmt_paper_or_dash(paper_value(&PAPER_FIG10_SPEEDUP, kind), |v| {
                format!("{v:.2}x")
            }),
            format!("{real_speedup:.2}x"),
            format!("{proxy_speedup:.2}x"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Consistency check: the proxy speedup should track the real speedup for every workload."
    );
}
