//! Fig. 10: runtime speedup across Westmere and Haswell processors for the
//! real workloads and their proxies.
use dmpb_bench::{fmt_paper_or_dash, generate_suite, paper_value, PAPER_FIG10_SPEEDUP};
use dmpb_metrics::table::TextTable;
use dmpb_workloads::{workload_by_kind, ClusterConfig};

fn main() {
    let suite = generate_suite();
    let westmere = ClusterConfig::three_node_westmere_64gb();
    let haswell = ClusterConfig::three_node_haswell();
    let mut t = TextTable::new(
        "Fig. 10 — Runtime speedup across Westmere and Haswell",
        &[
            "workload",
            "real speedup (paper)",
            "real speedup (model)",
            "proxy speedup (model)",
        ],
    );
    for r in suite.reports() {
        let workload = workload_by_kind(r.kind);
        let real_speedup =
            workload.measure(&westmere).runtime_secs / workload.measure(&haswell).runtime_secs;
        let proxy_speedup = r.proxy.measure(&westmere.node.arch).runtime_secs
            / r.proxy.measure(&haswell.node.arch).runtime_secs;
        t.add_row(&[
            r.kind.to_string(),
            fmt_paper_or_dash(paper_value(&PAPER_FIG10_SPEEDUP, r.kind), |v| {
                format!("{v:.2}x")
            }),
            format!("{real_speedup:.2}x"),
            format!("{proxy_speedup:.2}x"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Consistency check: the proxy speedup should track the real speedup for every workload."
    );
}
