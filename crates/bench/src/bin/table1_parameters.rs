//! Table I: tunable parameters for each data motif.
use dmpb_core::parameters::ParameterId;
use dmpb_metrics::table::TextTable;

fn main() {
    let mut t = TextTable::new(
        "Table I — Tunable parameters for each data motif",
        &["parameter", "description"],
    );
    let desc = |p: ParameterId| match p {
        ParameterId::DataSize => "Input data size for each big data motif",
        ParameterId::ChunkSize => "Data block size processed by each thread",
        ParameterId::NumTasks => "Process and thread numbers per motif",
        ParameterId::Weight => "Contribution of each data motif",
        ParameterId::BatchSize => "Batch size of each iteration (AI motifs)",
        ParameterId::FrameworkWeight => "Weight of the stack-emulation (GC-like) component",
    };
    for p in ParameterId::ALL {
        t.add_str_row(&[p.name(), desc(p)]);
    }
    println!("{}", t.render());
    println!("(batchSize/totalSize/heightSize/widthSize/numChannels map onto the AI motif geometry; see ProxyParameters.)");
}
