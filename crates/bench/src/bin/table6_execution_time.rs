//! Table VI: execution time of real workloads vs proxies on the five-node
//! Xeon E5645 cluster, driven by the parallel suite runner.  All eight
//! suite workloads are listed; the three Spark variants have no
//! paper-reported numbers (the paper evaluates the Hadoop/TensorFlow
//! five), so their paper columns render as an em dash.
use dmpb_bench::{fmt_paper_or_dash, suite_runner, PAPER_TABLE6};
use dmpb_metrics::table::{fmt_speedup, TextTable};

fn main() {
    let runner = suite_runner();
    let suite = runner.run_all();
    let mut t = TextTable::new(
        "Table VI — Execution time on Xeon E5645 (5-node cluster)",
        &[
            "workload",
            "real (paper)",
            "proxy (paper)",
            "real (model)",
            "proxy (model)",
            "speedup (paper)",
            "speedup (model)",
        ],
    );
    for run in &suite.runs {
        let r = &run.report;
        let paper = PAPER_TABLE6.iter().find(|(k, _, _)| *k == run.kind);
        let (paper_real, paper_proxy) = match paper {
            Some(&(_, real, proxy)) => (real, proxy),
            None => (f64::NAN, f64::NAN),
        };
        t.add_row(&[
            run.kind.to_string(),
            fmt_paper_or_dash(paper_real, |v| format!("{v:.0} s")),
            fmt_paper_or_dash(paper_proxy, |v| format!("{v:.2} s")),
            format!("{:.0} s", r.real_metrics.runtime_secs),
            format!("{:.2} s", r.proxy_metrics.runtime_secs),
            fmt_paper_or_dash(paper_real / paper_proxy, fmt_speedup),
            fmt_speedup(r.speedup),
        ]);
    }
    println!("{}", t.render());

    // A second run against the same cluster is served from the tuning
    // cache: same report, no re-tuning.
    let again = runner.run_all();
    let stats = runner.cache_stats();
    assert_eq!(suite.digest(), again.digest());
    println!(
        "tuning cache: {} hits / {} misses ({} entries); repeat-run digest {:016x} identical",
        stats.hits,
        stats.misses,
        stats.entries,
        again.digest(),
    );
}
