//! Table VI: execution time of real workloads vs proxies on the five-node
//! Xeon E5645 cluster, driven by the parallel suite runner.
use dmpb_bench::{suite_runner, PAPER_TABLE6};
use dmpb_metrics::table::{fmt_speedup, TextTable};

fn main() {
    let runner = suite_runner();
    let suite = runner.run_all();
    let mut t = TextTable::new(
        "Table VI — Execution time on Xeon E5645 (5-node cluster)",
        &["workload", "real (paper)", "proxy (paper)", "real (model)", "proxy (model)", "speedup (paper)", "speedup (model)"],
    );
    for (kind, paper_real, paper_proxy) in PAPER_TABLE6 {
        let r = &suite.run(kind).report;
        t.add_row(&[
            kind.to_string(),
            format!("{paper_real:.0} s"),
            format!("{paper_proxy:.2} s"),
            format!("{:.0} s", r.real_metrics.runtime_secs),
            format!("{:.2} s", r.proxy_metrics.runtime_secs),
            fmt_speedup(paper_real / paper_proxy),
            fmt_speedup(r.speedup),
        ]);
    }
    println!("{}", t.render());

    // A second run against the same cluster is served from the tuning
    // cache: same report, no re-tuning.
    let again = runner.run_all();
    let stats = runner.cache_stats();
    assert_eq!(suite.digest(), again.digest());
    println!(
        "tuning cache: {} hits / {} misses ({} entries); repeat-run digest {:016x} identical",
        stats.hits,
        stats.misses,
        stats.entries,
        again.digest(),
    );
}
