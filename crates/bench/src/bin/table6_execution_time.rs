//! Table VI: execution time of real workloads vs proxies on the five-node
//! Xeon E5645 cluster, rendered from the `paper-tables` campaign (the
//! scenario engine owns the sweep; this binary only formats rows).  All
//! eight suite workloads are listed; the three Spark variants have no
//! paper-reported numbers (the paper evaluates the Hadoop/TensorFlow
//! five), so their paper columns render as an em dash.
use dmpb_bench::{fmt_paper_or_dash, run_campaign, PAPER_TABLE6};
use dmpb_metrics::table::{fmt_speedup, TextTable};
use dmpb_scenario::builtin;

fn main() {
    let (runner, report) = run_campaign(&builtin::paper_tables());
    let mut t = TextTable::new(
        "Table VI — Execution time on Xeon E5645 (5-node cluster)",
        &[
            "workload",
            "real (paper)",
            "proxy (paper)",
            "real (model)",
            "proxy (model)",
            "speedup (paper)",
            "speedup (model)",
        ],
    );
    for cell in report.cells() {
        let paper = PAPER_TABLE6.iter().find(|(k, _, _)| *k == cell.workload);
        let (paper_real, paper_proxy) = match paper {
            Some(&(_, real, proxy)) => (real, proxy),
            None => (f64::NAN, f64::NAN),
        };
        t.add_row(&[
            cell.workload.to_string(),
            fmt_paper_or_dash(paper_real, |v| format!("{v:.0} s")),
            fmt_paper_or_dash(paper_proxy, |v| format!("{v:.2} s")),
            format!("{:.0} s", cell.real_runtime_secs),
            format!("{:.2} s", cell.proxy_runtime_secs),
            fmt_paper_or_dash(paper_real / paper_proxy, fmt_speedup),
            fmt_speedup(cell.speedup),
        ]);
    }
    println!("{}", t.render());

    // A second campaign run is served entirely from the result store:
    // same cells, same digest, nothing re-tuned or re-executed.
    let again = runner.run(&builtin::paper_tables());
    assert_eq!(report.digest(), again.digest());
    println!(
        "result store: {} of {} cells served on re-run (hit ratio {:.2}); repeat-run digest {:016x} identical",
        again.cache_hits(),
        again.outcomes.len(),
        again.hit_ratio(),
        again.digest(),
    );
}
