//! Table VI: execution time of real workloads vs proxies on the five-node
//! Xeon E5645 cluster.
use dmpb_bench::{generate_suite, PAPER_TABLE6};
use dmpb_metrics::table::{fmt_speedup, TextTable};

fn main() {
    let suite = generate_suite();
    let mut t = TextTable::new(
        "Table VI — Execution time on Xeon E5645 (5-node cluster)",
        &["workload", "real (paper)", "proxy (paper)", "real (model)", "proxy (model)", "speedup (paper)", "speedup (model)"],
    );
    for (kind, paper_real, paper_proxy) in PAPER_TABLE6 {
        let r = suite.report(kind);
        t.add_row(&[
            kind.to_string(),
            format!("{paper_real:.0} s"),
            format!("{paper_proxy:.2} s"),
            format!("{:.0} s", r.real_metrics.runtime_secs),
            format!("{:.2} s", r.proxy_metrics.runtime_secs),
            fmt_speedup(paper_real / paper_proxy),
            fmt_speedup(r.speedup),
        ]);
    }
    println!("{}", t.render());
}
