//! Emits `BENCH_PR4.json` — the first point of the repo's performance
//! trajectory, produced by the PR 4 work-stealing executor.
//!
//! Captured metrics:
//!
//! * suite wall time, cold (tuning included) and warm (tuning cached,
//!   kernels re-executed) through the persistent-pool [`SuiteRunner`];
//! * buffer-pool reuse ratio of the shared executor after the runs;
//! * per-workload kernel throughput (elements/second over the proxy's
//!   DAG execution, averaged over several repetitions);
//! * worker accounting (hardware parallelism, pool size, total threads
//!   ever spawned) so a future regression in steady-state spawning shows
//!   up in the artifact.
//!
//! Usage: `bench_pr4 [output-path]` (default `BENCH_PR4.json`).  Future
//! PRs regress against the committed snapshot and the CI artifact.

use std::fmt::Write as _;
use std::time::Instant;

use dmpb_core::runner::{SuiteRunner, SAMPLE_ELEMENTS};
use dmpb_motifs::workers::{hardware_parallelism, WorkerPool};
use dmpb_workloads::ClusterConfig;

/// Repetitions for the per-workload throughput measurement.
const THROUGHPUT_REPS: u32 = 20;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere())
        .with_max_parallel(8)
        .with_intra_parallel(8);

    let cold_start = Instant::now();
    let report = runner.run_all();
    let cold_secs = cold_start.elapsed().as_secs_f64();

    let warm_start = Instant::now();
    let warm_report = runner.run_all();
    let warm_secs = warm_start.elapsed().as_secs_f64();
    assert_eq!(report.digest(), warm_report.digest());

    let mut workloads = String::new();
    for (i, run) in report.runs.iter().enumerate() {
        let executor = runner.executor();
        let start = Instant::now();
        let mut execution = None;
        for _ in 0..THROUGHPUT_REPS {
            execution = Some(
                run.report
                    .proxy
                    .execute_dag(executor, SAMPLE_ELEMENTS, run.seed),
            );
        }
        let secs = start.elapsed().as_secs_f64() / f64::from(THROUGHPUT_REPS);
        let execution = execution.expect("at least one repetition ran");
        let elements = execution.total_elements();
        let _ = write!(
            workloads,
            "{}\n    {{\"name\": \"{}\", \"kernels\": {}, \"elements\": {}, \"wall_secs\": {:.9}, \"elements_per_sec\": {:.1}, \"checksum\": \"{:016x}\"}}",
            if i == 0 { "" } else { "," },
            run.kind,
            execution.kernels_run(),
            elements,
            secs,
            elements as f64 / secs.max(1e-12),
            execution.checksum,
        );
    }

    let pool = runner.executor().pool().stats();
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"suite\": {{\"cold_wall_secs\": {:.6}, \"warm_wall_secs\": {:.6}, \"digest\": \"{:016x}\", \"workloads\": {}}},\n  \"buffer_pool\": {{\"reused\": {}, \"allocated\": {}, \"reuse_ratio\": {:.4}}},\n  \"workers\": {{\"hardware_parallelism\": {}, \"pool_workers\": {}, \"threads_spawned_total\": {}}},\n  \"per_workload\": [{}\n  ]\n}}\n",
        cold_secs,
        warm_secs,
        report.digest(),
        report.runs.len(),
        pool.reused,
        pool.allocated,
        pool.reuse_ratio(),
        hardware_parallelism(),
        runner.worker_pool().workers(),
        WorkerPool::total_threads_spawned(),
        workloads,
    );

    std::fs::write(&output, &json).expect("failed to write the bench report");
    println!("{json}");
    eprintln!("wrote {output}");
}
