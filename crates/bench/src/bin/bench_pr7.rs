//! Emits `BENCH_PR7.json` — the PR 7 point of the repo's performance
//! trajectory: kernel-execution profiling overhead and the wins of the
//! profile-guided optimisations (superkernel fusion, specialised
//! dispatch, profile-derived pool prewarming).
//!
//! Captured metrics, one JSON object per line (parseable with
//! `dmpb_metrics::json::parse_object`):
//!
//! * `record:"bench"` — suite digest, cold wall time with profiling off
//!   and on, and their ratio (the profiling-overhead gate: ≤ 1.02);
//! * `record:"workload"` ×8 — per-workload kernel throughput
//!   (elements/second over the proxy's DAG, averaged over repetitions),
//!   directly comparable to `BENCH_PR4.json`;
//! * `record:"fusion"` ×8 — per-workload fused-vs-unfused wall time at
//!   small element counts (where per-task scheduling overhead dominates)
//!   and the planner's fusion count for the DAG;
//! * `record:"superkernel"` ×2 — each registered superkernel against its
//!   unfused pair at equal arguments (the shared-computation case).
//!
//! ```text
//! bench_pr7 [--out <path>] [--check <baseline>]
//!   --out <path>       where to write the report (default BENCH_PR7.json)
//!   --check <baseline> compare per-workload throughput against a stored
//!                      report; exit 1 if any workload regressed by more
//!                      than 25%
//! ```
//!
//! Setting `DMPB_PERF_SKIP` (to anything but `0` or the empty string)
//! skips the run with a notice and exit code 0 — the escape hatch for
//! congested CI runners.

use std::time::Instant;

use dmpb_core::executor::DagExecutor;
use dmpb_core::runner::{SuiteRunner, SAMPLE_ELEMENTS};
use dmpb_metrics::json::{parse_object, ObjectWriter};
use dmpb_motifs::{BufferPool, KernelProfiler, MotifKind, MotifRegistry};
use dmpb_workloads::ClusterConfig;

/// Repetitions per measurement window for the per-workload throughput
/// measurement (matches `bench_pr4`, so the numbers are directly
/// comparable).
const THROUGHPUT_REPS: u32 = 20;

/// Measurement windows per workload; the best window is reported.  A
/// single 20-rep window spans only a few milliseconds, where one
/// descheduling hiccup reads as a 2x throughput swing — taking the best
/// of several windows filters interference (contention can only ever
/// make a window slower than the machine's true capability).
const THROUGHPUT_WINDOWS: u32 = 5;

/// Repetitions for the fused-vs-unfused comparison; small DAGs run in
/// microseconds, so a larger count damps scheduler noise.
const FUSION_REPS: u32 = 40;

/// Element count for the fusion comparison: small enough that per-task
/// overhead (what fusion removes) is a visible share of the wall time.
const FUSION_ELEMENTS: usize = 2_048;

/// A workload regresses the gate when its throughput falls below this
/// fraction of the baseline's.
const REGRESSION_FLOOR: f64 = 0.75;

/// Best-of-windows per-repetition wall time for `f` (see
/// [`THROUGHPUT_WINDOWS`] for why best-of, not average).
fn best_secs(windows: u32, reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(reps));
    }
    best
}

fn runner() -> SuiteRunner {
    SuiteRunner::new(ClusterConfig::five_node_westmere())
        .with_max_parallel(8)
        .with_intra_parallel(8)
}

/// Best-of-two cold suite runs on fresh runners (fresh tuning caches),
/// so one scheduler hiccup cannot poison the overhead ratio.
fn cold_suite_secs() -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0;
    for _ in 0..2 {
        let runner = runner();
        let start = Instant::now();
        let report = runner.run_all();
        best = best.min(start.elapsed().as_secs_f64());
        digest = report.digest();
    }
    (best, digest)
}

fn main() -> std::process::ExitCode {
    if std::env::var("DMPB_PERF_SKIP").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("bench_pr7: skipped (DMPB_PERF_SKIP is set); no report written, no gate applied");
        return std::process::ExitCode::SUCCESS;
    }

    let mut out_path = "BENCH_PR7.json".to_string();
    let mut check_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => return usage(),
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let profiler = KernelProfiler::global();

    // Profiling-overhead ratio over the cold suite (tuning + execution).
    profiler.set_enabled(false);
    let (plain_secs, plain_digest) = cold_suite_secs();
    profiler.set_enabled(true);
    profiler.reset();
    let (profiled_secs, profiled_digest) = cold_suite_secs();
    profiler.set_enabled(false);
    assert_eq!(
        plain_digest, profiled_digest,
        "profiling must not change the suite digest"
    );
    let overhead_ratio = profiled_secs / plain_secs.max(1e-12);

    let mut lines = String::new();
    let mut header = ObjectWriter::new();
    header.field_str("record", "bench");
    header.field_int("pr", 7);
    header.field_u64_hex("digest", plain_digest);
    header.field_f64("cold_wall_secs", plain_secs);
    header.field_f64("profiled_cold_wall_secs", profiled_secs);
    header.field_f64("profiling_overhead_ratio", overhead_ratio);
    lines.push_str(&header.finish());
    lines.push('\n');

    // Per-workload throughput on a warm runner (the bench_pr4 protocol).
    let runner = runner();
    let report = runner.run_all();
    let mut current = Vec::new();
    for run in &report.runs {
        let executor = runner.executor();
        let mut secs = f64::INFINITY;
        let mut execution = None;
        for _ in 0..THROUGHPUT_WINDOWS {
            let start = Instant::now();
            for _ in 0..THROUGHPUT_REPS {
                execution = Some(
                    run.report
                        .proxy
                        .execute_dag(executor, SAMPLE_ELEMENTS, run.seed),
                );
            }
            secs = secs.min(start.elapsed().as_secs_f64() / f64::from(THROUGHPUT_REPS));
        }
        let execution = execution.expect("at least one repetition ran");
        let throughput = execution.total_elements() as f64 / secs.max(1e-12);
        current.push((run.kind.to_string(), throughput));

        let mut w = ObjectWriter::new();
        w.field_str("record", "workload");
        w.field_str("name", &run.kind.to_string());
        w.field_int("kernels", execution.kernels_run() as i64);
        w.field_int("elements", execution.total_elements() as i64);
        w.field_f64("wall_secs", secs);
        w.field_f64("elements_per_sec", throughput);
        w.field_u64_hex("checksum", execution.checksum);
        lines.push_str(&w.finish());
        lines.push('\n');
    }

    // Fused vs unfused per workload, serial, small cells.
    for run in &report.runs {
        let dag = run.report.proxy.dag();
        let fused = DagExecutor::new();
        let unfused = DagExecutor::new().with_fusion(false);
        let planned = fused.planned_fusions(&dag);
        assert_eq!(
            fused.execute(&dag, FUSION_ELEMENTS, run.seed).checksum,
            unfused.execute(&dag, FUSION_ELEMENTS, run.seed).checksum,
            "fusion must not change the digest of {}",
            run.kind
        );
        let fused_secs = best_secs(THROUGHPUT_WINDOWS, FUSION_REPS, || {
            std::hint::black_box(fused.execute(&dag, FUSION_ELEMENTS, run.seed).checksum);
        });
        let unfused_secs = best_secs(THROUGHPUT_WINDOWS, FUSION_REPS, || {
            std::hint::black_box(unfused.execute(&dag, FUSION_ELEMENTS, run.seed).checksum);
        });

        let mut w = ObjectWriter::new();
        w.field_str("record", "fusion");
        w.field_str("name", &run.kind.to_string());
        w.field_int("planned_fusions", planned as i64);
        w.field_f64("fused_secs", fused_secs);
        w.field_f64("unfused_secs", unfused_secs);
        w.field_f64("speedup", unfused_secs / fused_secs.max(1e-12));
        lines.push_str(&w.finish());
        lines.push('\n');
    }

    // Each registered superkernel against its unfused pair at equal
    // arguments — the shared-computation win, isolated from scheduling.
    let registry = MotifRegistry::global();
    let pool = BufferPool::new();
    for (first, second, n) in [
        (MotifKind::QuickSort, MotifKind::MergeSort, 20_000),
        (MotifKind::GraphConstruct, MotifKind::GraphTraversal, 10_000),
    ] {
        let kernel = registry
            .fused(first, second)
            .expect("superkernel is registered");
        assert_eq!(
            kernel.execute((n, 1), (n, 1), &pool),
            (
                registry.kernel(first).execute(n, 1, &pool),
                registry.kernel(second).execute(n, 1, &pool),
            ),
            "superkernel must be checksum-identical to its pair"
        );
        let fused_secs = best_secs(THROUGHPUT_WINDOWS, FUSION_REPS, || {
            std::hint::black_box(kernel.execute((n, 1), (n, 1), &pool));
        });
        let unfused_secs = best_secs(THROUGHPUT_WINDOWS, FUSION_REPS, || {
            std::hint::black_box((
                registry.kernel(first).execute(n, 1, &pool),
                registry.kernel(second).execute(n, 1, &pool),
            ));
        });

        let mut w = ObjectWriter::new();
        w.field_str("record", "superkernel");
        w.field_str("pair", &format!("{}+{}", first.name(), second.name()));
        w.field_int("elements", n as i64);
        w.field_f64("fused_secs", fused_secs);
        w.field_f64("unfused_secs", unfused_secs);
        w.field_f64("speedup", unfused_secs / fused_secs.max(1e-12));
        lines.push_str(&w.finish());
        lines.push('\n');
    }

    std::fs::write(&out_path, &lines).expect("failed to write the bench report");
    print!("{lines}");
    eprintln!("wrote {out_path}");

    if let Some(baseline) = check_path {
        return check(&baseline, &current);
    }
    std::process::ExitCode::SUCCESS
}

/// The `--check` gate: every workload present in both reports must keep
/// at least [`REGRESSION_FLOOR`] of its baseline throughput.
fn check(baseline_path: &str, current: &[(String, f64)]) -> std::process::ExitCode {
    let source = match std::fs::read_to_string(baseline_path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("bench_pr7: cannot read baseline {baseline_path}: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    let mut baseline = Vec::new();
    for line in source.lines().filter(|l| !l.trim().is_empty()) {
        let fields = match parse_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                eprintln!("bench_pr7: malformed baseline line: {e}");
                return std::process::ExitCode::from(2);
            }
        };
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, value)| value)
        };
        if get("record").and_then(|v| v.as_str()) != Some("workload") {
            continue;
        }
        match (
            get("name").and_then(|v| v.as_str()),
            get("elements_per_sec").and_then(|v| v.as_f64()),
        ) {
            (Some(name), Some(throughput)) => baseline.push((name.to_string(), throughput)),
            _ => {
                eprintln!("bench_pr7: baseline workload line is missing name/elements_per_sec");
                return std::process::ExitCode::from(2);
            }
        }
    }
    if baseline.is_empty() {
        eprintln!("bench_pr7: baseline {baseline_path} has no workload records");
        return std::process::ExitCode::from(2);
    }

    let mut failed = false;
    for (name, was) in &baseline {
        let Some((_, now)) = current.iter().find(|(n, _)| n == name) else {
            eprintln!("bench_pr7: baseline workload {name} missing from this run");
            failed = true;
            continue;
        };
        let ratio = now / was.max(1e-12);
        let verdict = if ratio < REGRESSION_FLOOR {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_pr7: {verdict} {name}: {now:.0} vs baseline {was:.0} elements/sec ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "bench_pr7: throughput regression gate failed (floor: {:.0}% of baseline)",
            REGRESSION_FLOOR * 100.0
        );
        std::process::ExitCode::from(1)
    } else {
        println!(
            "bench_pr7: throughput gate passed for {} workloads",
            baseline.len()
        );
        std::process::ExitCode::SUCCESS
    }
}

fn usage() -> std::process::ExitCode {
    eprintln!("usage: bench_pr7 [--out <path>] [--check <baseline>]");
    std::process::ExitCode::from(2)
}
