//! Emits `BENCH_PR5.json` — the campaign engine's point on the repo's
//! performance trajectory (alongside `BENCH_PR4.json`).
//!
//! Captured metrics:
//!
//! * campaign wall time for the bundled `paper-tables` scenario, cold
//!   (tuning + kernel execution + store writes) and warm (every cell
//!   served from the content-addressed result store);
//! * store hit ratio of the warm run and cells/second for both runs;
//! * the campaign digest, pinned identical across cold and warm so a
//!   future serialization regression shows up in the artifact.
//!
//! Usage: `bench_pr5 [output-path]` (default `BENCH_PR5.json`).  The
//! result store lives in a scratch file next to the output and is
//! removed afterwards — the snapshot must always measure a true cold
//! start.

use std::time::Instant;

use dmpb_metrics::json::ObjectWriter;
use dmpb_scenario::{builtin, CampaignRunner, ResultStore};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let store_path = format!("{output}.store-scratch.jsonl");
    std::fs::remove_file(&store_path).ok();

    let scenario = builtin::paper_tables();
    let runner = CampaignRunner::with_store(
        ResultStore::open(&store_path).expect("scratch result store opens"),
    );

    let cold_start = Instant::now();
    let cold = runner.run(&scenario);
    let cold_secs = cold_start.elapsed().as_secs_f64();
    assert_eq!(cold.cache_hits(), 0, "scratch store must start cold");

    // Re-open the store from disk so the warm run proves the persisted
    // bytes (not just the in-memory map) reproduce the campaign.
    let warm_runner = CampaignRunner::with_store(
        ResultStore::open(&store_path).expect("scratch result store reopens"),
    );
    let warm_start = Instant::now();
    let warm = warm_runner.run(&scenario);
    let warm_secs = warm_start.elapsed().as_secs_f64();
    assert_eq!(
        cold.digest(),
        warm.digest(),
        "warm run must be byte-identical"
    );

    let cells = cold.outcomes.len();
    let mut w = ObjectWriter::new();
    w.field_int("pr", 5);
    w.field_str("scenario", &scenario.name);
    w.field_int("cells", cells as i64);
    w.field_f64("cold_wall_secs", cold_secs);
    w.field_f64("warm_wall_secs", warm_secs);
    w.field_f64("cold_cells_per_sec", cells as f64 / cold_secs.max(1e-12));
    w.field_f64("warm_cells_per_sec", cells as f64 / warm_secs.max(1e-12));
    w.field_f64("warm_hit_ratio", warm.hit_ratio());
    w.field_f64("warm_speedup", cold_secs / warm_secs.max(1e-12));
    w.field_u64_hex("campaign_digest", cold.digest());
    let json = format!("{}\n", w.finish());

    std::fs::remove_file(&store_path).ok();
    std::fs::write(&output, &json).expect("failed to write the bench report");
    println!("{json}");
    eprintln!("wrote {output}");
}
