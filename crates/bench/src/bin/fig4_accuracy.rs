//! Fig. 4: system and micro-architectural data accuracy on Xeon E5645.
use dmpb_bench::{paper_value, run_suite, PAPER_FIG4_ACCURACY};
use dmpb_metrics::table::{fmt_percent, TextTable};
use dmpb_metrics::MetricId;

fn main() {
    let suite = run_suite();
    let mut t = TextTable::new(
        "Fig. 4 — Average data accuracy per workload (Xeon E5645)",
        &["workload", "paper", "measured", "worst metric"],
    );
    for r in suite.reports() {
        let (worst, acc) = r.accuracy.worst_metric().unwrap();
        t.add_row(&[
            r.kind.to_string(),
            fmt_percent(paper_value(&PAPER_FIG4_ACCURACY, r.kind)),
            fmt_percent(r.accuracy.average()),
            format!("{worst} ({:.0}%)", acc * 100.0),
        ]);
    }
    println!("{}", t.render());

    // Per-metric detail for the full figure.
    let mut d = TextTable::new(
        "Fig. 4 (detail) — per-metric accuracy",
        &["metric", "TeraSort", "K-means", "PageRank", "AlexNet", "Inception-V3"],
    );
    for id in MetricId::TUNABLE {
        let mut row = vec![id.name().to_string()];
        for r in suite.reports() {
            row.push(fmt_percent(r.accuracy.get(id).unwrap_or(1.0)));
        }
        d.add_row(&row);
    }
    println!("{}", d.render());
}
