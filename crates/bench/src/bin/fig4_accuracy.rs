//! Fig. 4: system and micro-architectural data accuracy on Xeon E5645,
//! extended to the full eight-workload suite (the Spark variants have no
//! paper bars, rendered as an em dash).
use dmpb_bench::{fmt_paper_or_dash, paper_value, run_suite, PAPER_FIG4_ACCURACY};
use dmpb_metrics::table::{fmt_percent, TextTable};
use dmpb_metrics::MetricId;
use dmpb_workloads::WorkloadKind;

fn main() {
    let suite = run_suite();
    let mut t = TextTable::new(
        "Fig. 4 — Average data accuracy per workload (Xeon E5645)",
        &["workload", "paper", "measured", "worst metric"],
    );
    for r in suite.reports() {
        let (worst, acc) = r.accuracy.worst_metric().unwrap();
        let paper = paper_value(&PAPER_FIG4_ACCURACY, r.kind);
        t.add_row(&[
            r.kind.to_string(),
            fmt_paper_or_dash(paper, fmt_percent),
            fmt_percent(r.accuracy.average()),
            format!("{worst} ({:.0}%)", acc * 100.0),
        ]);
    }
    println!("{}", t.render());

    // Per-metric detail for the full figure, one column per workload.
    let mut header = vec!["metric".to_string()];
    header.extend(WorkloadKind::ALL.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut d = TextTable::new("Fig. 4 (detail) — per-metric accuracy", &header_refs);
    for id in MetricId::TUNABLE {
        let mut row = vec![id.name().to_string()];
        for r in suite.reports() {
            row.push(fmt_percent(r.accuracy.get(id).unwrap_or(1.0)));
        }
        d.add_row(&row);
    }
    println!("{}", d.render());
}
