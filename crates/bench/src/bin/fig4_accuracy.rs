//! Fig. 4: system and micro-architectural data accuracy on Xeon E5645,
//! rendered from the `paper-tables` campaign (same scenario as Table VI —
//! the engine deduplicates the sweep; this binary only formats accuracy
//! columns).  The Spark variants have no paper bars, rendered as an em
//! dash.
use dmpb_bench::{fmt_paper_or_dash, paper_value, run_campaign, PAPER_FIG4_ACCURACY};
use dmpb_metrics::table::{fmt_percent, TextTable};
use dmpb_metrics::MetricId;
use dmpb_scenario::builtin;
use dmpb_workloads::WorkloadKind;

fn main() {
    let (_, report) = run_campaign(&builtin::paper_tables());
    let mut t = TextTable::new(
        "Fig. 4 — Average data accuracy per workload (Xeon E5645)",
        &["workload", "paper", "measured", "worst metric"],
    );
    for cell in report.cells() {
        let paper = paper_value(&PAPER_FIG4_ACCURACY, cell.workload);
        t.add_row(&[
            cell.workload.to_string(),
            fmt_paper_or_dash(paper, fmt_percent),
            fmt_percent(cell.accuracy_avg),
            format!(
                "{} ({:.0}%)",
                cell.worst_metric,
                cell.worst_accuracy * 100.0
            ),
        ]);
    }
    println!("{}", t.render());

    // Per-metric detail for the full figure, one column per workload.
    let mut header = vec!["metric".to_string()];
    header.extend(WorkloadKind::ALL.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut d = TextTable::new("Fig. 4 (detail) — per-metric accuracy", &header_refs);
    for id in MetricId::TUNABLE {
        let mut row = vec![id.name().to_string()];
        for cell in report.cells() {
            row.push(fmt_percent(cell.accuracy_for(id.name()).unwrap_or(1.0)));
        }
        d.add_row(&row);
    }
    println!("{}", d.render());
}
