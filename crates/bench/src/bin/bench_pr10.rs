//! Emits `BENCH_PR10.json` — the PR 10 point of the repo's performance
//! trajectory: synthetic workload populations.  Three phases pin the
//! population subsystem's cost profile:
//!
//! * **Synthesis throughput** — how fast `PopulationGenerator` samples
//!   members from a spec (pure parameter synthesis, no execution).
//!   Population expansion sits on the campaign planner's critical path
//!   (`matrix_size`, `--describe-population`, budget planning), so it
//!   must stay orders of magnitude cheaper than running a cell.
//! * **Campaign throughput** — cold population-only campaigns at sizes
//!   10 / 100 / 500 against a sharded store, reported as cells/second.
//!   Each synthetic member tunes and executes like a named workload, so
//!   this is the end-to-end cost of breaking out of the 8 paper
//!   workloads.
//! * **Warm hit ratio** — the size-500 campaign re-run against the same
//!   store through a fresh open must be served ≥ [`MIN_WARM_HIT_RATIO`]
//!   from disk with a byte-identical digest (the store-keyed
//!   fingerprint round-trips synthetic cells).
//!
//! Captured metrics, one JSON object per line (parseable with
//! `dmpb_metrics::json::parse_object`):
//!
//! * `record:"bench"` — synthesis member count, campaign sizes, seed;
//! * `record:"synthesis"` — members synthesized per second;
//! * `record:"campaign_<size>"` — cold wall seconds and cells/second
//!   at each population size;
//! * `record:"warm"` — warm-run wall seconds, cells/second and the
//!   hit ratio for the largest size.
//!
//! ```text
//! bench_pr10 [--out <path>] [--check <baseline>]
//!   --out <path>       where to write the report (default BENCH_PR10.json)
//!   --check <baseline> compare throughput against a stored report; exit 1
//!                      if a shared metric regressed by more than 25%
//! ```
//!
//! The warm-hit-ratio gate applies on every run; `--check` layers the
//! relative regression gate on top.  Setting `DMPB_PERF_SKIP` (to
//! anything but `0` or the empty string) skips the run with a notice and
//! exit code 0 — the escape hatch for congested CI runners.

use std::path::PathBuf;
use std::time::Instant;

use dmpb_metrics::json::{parse_object, ObjectWriter};
use dmpb_population::{PopulationGenerator, PopulationSpec};
use dmpb_scenario::{CampaignRunner, ResultStore, Scenario};

/// Campaign phase population sizes, smallest first; the last (largest)
/// one doubles as the warm-run subject.
const SIZES: [u32; 3] = [10, 100, 500];

/// Members sampled in the synthesis phase — large enough that the
/// per-member cost dominates the two `Instant` reads.
const SYNTHESIS_MEMBERS: u32 = 20_000;

/// Every phase uses this base seed, so the report is reproducible.
const BASE_SEED: u64 = 0xB10C_DA7A;

/// The warm run's absolute gate: fraction of cells served from the
/// store (matches the CI population-smoke job's `--expect-hit-ratio`).
const MIN_WARM_HIT_RATIO: f64 = 0.9;

/// A metric regresses the `--check` gate when it falls below this
/// fraction of the baseline's (matches `bench_pr7`..`bench_pr9`).
const REGRESSION_FLOOR: f64 = 0.75;

/// Segment count for the campaign stores: the sharded layout is the
/// one CI exercises, and PR 9 made it the performance default.
const SHARDS: usize = 8;

/// A population-only scenario: no named workloads, one axis
/// combination, small sample executions so the phase measures
/// per-cell overhead (tuning + synthesis + reduction), not data scale.
fn population_scenario(size: u32) -> Scenario {
    let mut scenario = Scenario::with_defaults("bench-pr10");
    scenario.workloads = Vec::new();
    scenario.elements = vec![500];
    scenario.population = Some(PopulationSpec {
        size,
        base_seed: BASE_SEED,
        ..PopulationSpec::default()
    });
    scenario
}

fn main() -> std::process::ExitCode {
    if std::env::var("DMPB_PERF_SKIP").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("bench_pr10: skipped (DMPB_PERF_SKIP is set); no report written, no gate applied");
        return std::process::ExitCode::SUCCESS;
    }

    let mut out_path = "BENCH_PR10.json".to_string();
    let mut check_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_pr10: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            _ => return usage(),
        }
    }

    // Phase 1: pure synthesis throughput.  The XOR fold keeps the
    // member materialization observable to the optimizer.
    let spec = PopulationSpec {
        size: SYNTHESIS_MEMBERS,
        base_seed: BASE_SEED,
        ..PopulationSpec::default()
    };
    let generator = PopulationGenerator::new(spec).expect("bench spec is valid");
    let start = Instant::now();
    let mut checksum = 0u64;
    for rank in 0..SYNTHESIS_MEMBERS {
        checksum ^= generator.member(rank).member_hash();
    }
    let synthesis_rate = SYNTHESIS_MEMBERS as f64 / start.elapsed().as_secs_f64().max(1e-12);
    println!(
        "bench_pr10: synthesis: {synthesis_rate:.0} members/sec \
         ({SYNTHESIS_MEMBERS} members, checksum {checksum:016x})"
    );

    // Phase 2: cold campaign throughput at each population size, each
    // against its own fresh sharded store.
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("dmpb-bench-pr10-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");
    let mut campaigns = Vec::new();
    let mut cold_digest = 0u64;
    let mut cold_lines = String::new();
    for size in SIZES {
        let scenario = population_scenario(size);
        let store_dir = scratch.join(format!("store-{size}"));
        let store = ResultStore::open_sharded(&store_dir, SHARDS).expect("bench store opens");
        let start = Instant::now();
        let report = CampaignRunner::with_store(store).run(&scenario);
        let cold_secs = start.elapsed().as_secs_f64();
        assert_eq!(report.cells().count(), size as usize, "every member ran");
        assert_eq!(report.cache_hits(), 0, "cold store serves nothing");
        let rate = size as f64 / cold_secs.max(1e-12);
        println!("bench_pr10: campaign size {size}: cold {cold_secs:.2}s ({rate:.1} cells/sec)");
        campaigns.push((size, cold_secs, rate));
        if size == *SIZES.last().unwrap() {
            cold_digest = report.digest();
            cold_lines = report.to_lines();
        }
    }

    // Phase 3: warm re-run of the largest campaign through a fresh
    // store open — the hit-ratio and byte-identity gates.
    let largest = *SIZES.last().unwrap();
    let scenario = population_scenario(largest);
    let store_dir = scratch.join(format!("store-{largest}"));
    let store = ResultStore::open_sharded(&store_dir, SHARDS).expect("bench store reopens");
    let start = Instant::now();
    let warm = CampaignRunner::with_store(store).run(&scenario);
    let warm_secs = start.elapsed().as_secs_f64();
    let warm_rate = largest as f64 / warm_secs.max(1e-12);
    let hit_ratio = warm.hit_ratio();
    println!(
        "bench_pr10: warm size {largest}: {warm_secs:.2}s ({warm_rate:.1} cells/sec), \
         hit ratio {hit_ratio:.2}"
    );
    assert_eq!(
        warm.digest(),
        cold_digest,
        "warm digest must byte-match the cold run"
    );
    assert_eq!(warm.to_lines(), cold_lines, "warm cells must byte-match");
    std::fs::remove_dir_all(&scratch).ok();

    let mut lines = String::new();
    let mut header = ObjectWriter::new();
    header.field_str("record", "bench");
    header.field_int("pr", 10);
    header.field_int("synthesis_members", SYNTHESIS_MEMBERS as i64);
    header.field_str("campaign_sizes", &SIZES.map(|s| s.to_string()).join("/"));
    header.field_str("base_seed", &format!("{BASE_SEED:#x}"));
    lines.push_str(&header.finish());
    lines.push('\n');
    let mut w = ObjectWriter::new();
    w.field_str("record", "synthesis");
    w.field_int("members", SYNTHESIS_MEMBERS as i64);
    w.field_f64("members_per_sec", synthesis_rate);
    lines.push_str(&w.finish());
    lines.push('\n');
    for (size, cold_secs, rate) in &campaigns {
        let mut w = ObjectWriter::new();
        w.field_str("record", &format!("campaign_{size}"));
        w.field_int("size", *size as i64);
        w.field_f64("cold_secs", *cold_secs);
        w.field_f64("cells_per_sec", *rate);
        lines.push_str(&w.finish());
        lines.push('\n');
    }
    let mut w = ObjectWriter::new();
    w.field_str("record", "warm");
    w.field_int("size", largest as i64);
    w.field_f64("warm_secs", warm_secs);
    w.field_f64("cells_per_sec", warm_rate);
    w.field_f64("hit_ratio", hit_ratio);
    lines.push_str(&w.finish());
    lines.push('\n');
    std::fs::write(&out_path, &lines).expect("failed to write the bench report");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if hit_ratio < MIN_WARM_HIT_RATIO {
        eprintln!(
            "bench_pr10: warm gate failed: hit ratio {hit_ratio:.2} < required \
             {MIN_WARM_HIT_RATIO:.2}"
        );
        failed = true;
    }
    if let Some(baseline) = check_path {
        let mut rates = vec![("synthesis".to_string(), "members_per_sec", synthesis_rate)];
        for (size, _, rate) in &campaigns {
            rates.push((format!("campaign_{size}"), "cells_per_sec", *rate));
        }
        rates.push(("warm".to_string(), "cells_per_sec", warm_rate));
        if !check(&baseline, &rates) {
            failed = true;
        }
    }
    if failed {
        std::process::ExitCode::from(1)
    } else {
        println!("bench_pr10: all gates passed");
        std::process::ExitCode::SUCCESS
    }
}

/// The `--check` gate: every metric present in both reports must keep
/// at least [`REGRESSION_FLOOR`] of its baseline value.
fn check(baseline_path: &str, rates: &[(String, &str, f64)]) -> bool {
    let source = match std::fs::read_to_string(baseline_path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("bench_pr10: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let mut compared = 0;
    let mut ok = true;
    for line in source.lines().filter(|l| !l.trim().is_empty()) {
        let fields = match parse_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                eprintln!("bench_pr10: malformed baseline line: {e}");
                return false;
            }
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(record) = get("record").and_then(|v| v.as_str()) else {
            continue;
        };
        for (kind, key, now) in rates {
            if record != kind {
                continue;
            }
            let Some(was) = get(key).and_then(|v| v.as_f64()) else {
                eprintln!("bench_pr10: baseline {kind} record is missing {key}");
                return false;
            };
            compared += 1;
            let ratio = now / was.max(1e-12);
            let verdict = if ratio < REGRESSION_FLOOR {
                ok = false;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "bench_pr10: {verdict} {kind}.{key}: {now:.1} vs baseline {was:.1} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_pr10: no metrics shared with baseline {baseline_path}");
        return false;
    }
    ok
}

fn usage() -> std::process::ExitCode {
    eprintln!("usage: bench_pr10 [--out <path>] [--check <baseline>]");
    std::process::ExitCode::from(2)
}
