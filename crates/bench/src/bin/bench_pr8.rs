//! Emits `BENCH_PR8.json` — the PR 8 point of the repo's performance
//! trajectory: streaming data-plane scaling.  One tuned TeraSort proxy is
//! executed as a streamed cell across element counts from 10^5 up to
//! 10^8, pinning that wall time scales linearly while peak RSS stays
//! flat (the chunk budget, not the cell size, sets the high-water mark).
//!
//! Captured metrics, one JSON object per line (parseable with
//! `dmpb_metrics::json::parse_object`):
//!
//! * `record:"bench"` — chunk size, fan-out, and the chunked-vs-monolithic
//!   wall-time ratio at 10^6 elements (the streaming-overhead gate, with
//!   the checksum-identity assertion built in);
//! * `record:"scale"` ×N — per-element-count wall time, throughput
//!   (elements/second) and the process `VmHWM` peak RSS after the run.
//!
//! ```text
//! bench_pr8 [--out <path>] [--check <baseline>] [--max-elements <N>]
//!           [--max-rss-mb <MB>]
//!   --out <path>       where to write the report (default BENCH_PR8.json)
//!   --check <baseline> compare per-scale throughput against a stored
//!                      report; exit 1 if any shared point regressed by
//!                      more than 25%
//!   --max-elements <N> cap the sweep (CI smoke runs stop at 10^7)
//!   --max-rss-mb <MB>  exit 1 if VmHWM exceeds this after any point
//!                      (the constant-RSS gate)
//! ```
//!
//! Setting `DMPB_PERF_SKIP` (to anything but `0` or the empty string)
//! skips the run with a notice and exit code 0 — the escape hatch for
//! congested CI runners.

use std::time::Instant;

use dmpb_core::executor::DagExecutor;
use dmpb_core::runner::SuiteRunner;
use dmpb_metrics::json::{parse_object, ObjectWriter};
use dmpb_workloads::{ClusterConfig, WorkloadKind};

/// Streaming chunk size for the sweep: one binary megachunk, 256
/// granules — large enough to amortise task scheduling, small enough
/// that fan-out × chunk scratch stays tens of megabytes.
const CHUNK_ELEMENTS: usize = 1 << 20;

/// Executor fan-out for the sweep.
const WORKERS: usize = 8;

/// The element-count axis (capped by `--max-elements`).
const SCALES: [usize; 4] = [100_000, 1_000_000, 10_000_000, 100_000_000];

/// A scale point regresses the `--check` gate when its throughput falls
/// below this fraction of the baseline's (matches `bench_pr7`).
const REGRESSION_FLOOR: f64 = 0.75;

/// The process's peak resident set size in kB (`VmHWM`, never
/// decreasing) from `/proc/self/status`, or 0 off Linux.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmHWM:")?;
                rest.trim().strip_suffix("kB")?.trim().parse::<u64>().ok()
            })
        })
        .unwrap_or(0)
}

fn main() -> std::process::ExitCode {
    if std::env::var("DMPB_PERF_SKIP").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("bench_pr8: skipped (DMPB_PERF_SKIP is set); no report written, no gate applied");
        return std::process::ExitCode::SUCCESS;
    }

    let mut out_path = "BENCH_PR8.json".to_string();
    let mut check_path = None;
    let mut max_elements = usize::MAX;
    let mut max_rss_mb = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_pr8: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--max-elements" => match value("--max-elements").parse() {
                Ok(n) => max_elements = n,
                Err(e) => {
                    eprintln!("bench_pr8: bad --max-elements: {e}");
                    return std::process::ExitCode::from(2);
                }
            },
            "--max-rss-mb" => match value("--max-rss-mb").parse::<u64>() {
                Ok(n) => max_rss_mb = Some(n),
                Err(e) => {
                    eprintln!("bench_pr8: bad --max-rss-mb: {e}");
                    return std::process::ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }

    // One tuned TeraSort proxy; tuning is not part of any timed window.
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere()).with_intra_parallel(WORKERS);
    let run = runner.run_kind(WorkloadKind::TeraSort);
    let dag = run.report.proxy.dag();
    let streamed = DagExecutor::new()
        .with_max_parallel(WORKERS)
        .with_chunk_elements(Some(CHUNK_ELEMENTS));
    let monolithic = DagExecutor::new().with_max_parallel(WORKERS);

    // Streaming-overhead ratio at 10^6 elements, with the checksum
    // identity asserted on the same executions.
    let probe = 1_000_000.min(max_elements.max(SCALES[0]));
    let start = Instant::now();
    let streamed_exec = streamed.execute(&dag, probe, run.seed);
    let streamed_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mono_exec = monolithic.execute(&dag, probe, run.seed);
    let mono_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        streamed_exec.checksum, mono_exec.checksum,
        "streaming must not change the execution checksum"
    );

    let mut lines = String::new();
    let mut header = ObjectWriter::new();
    header.field_str("record", "bench");
    header.field_int("pr", 8);
    header.field_str("workload", &WorkloadKind::TeraSort.to_string());
    header.field_int("chunk_elements", CHUNK_ELEMENTS as i64);
    header.field_int("workers", WORKERS as i64);
    header.field_int("probe_elements", probe as i64);
    header.field_f64("streamed_secs", streamed_secs);
    header.field_f64("monolithic_secs", mono_secs);
    header.field_f64(
        "streaming_overhead_ratio",
        streamed_secs / mono_secs.max(1e-12),
    );
    header.field_u64_hex("checksum", streamed_exec.checksum);
    lines.push_str(&header.finish());
    lines.push('\n');

    // The scaling sweep: one streamed execution per point (10^8 runs for
    // minutes; repetition windows would be prohibitive and the linearity
    // across four decades is the signal, not microsecond noise).
    let mut current = Vec::new();
    let mut rss_failed = false;
    for elements in SCALES.into_iter().filter(|&n| n <= max_elements) {
        let start = Instant::now();
        let execution = streamed.execute(&dag, elements, run.seed);
        let wall_secs = start.elapsed().as_secs_f64();
        let throughput = execution.total_elements() as f64 / wall_secs.max(1e-12);
        let hwm_kb = vm_hwm_kb();
        current.push((elements, throughput));

        let mut w = ObjectWriter::new();
        w.field_str("record", "scale");
        w.field_int("elements", elements as i64);
        w.field_int("total_elements", execution.total_elements() as i64);
        w.field_int("kernels", execution.kernels_run() as i64);
        w.field_f64("wall_secs", wall_secs);
        w.field_f64("elements_per_sec", throughput);
        w.field_int("vm_hwm_kb", hwm_kb as i64);
        w.field_u64_hex("checksum", execution.checksum);
        lines.push_str(&w.finish());
        lines.push('\n');
        println!(
            "bench_pr8: {elements} elements in {wall_secs:.2}s \
             ({throughput:.0} elements/sec, VmHWM {} MB)",
            hwm_kb / 1024
        );

        if let Some(ceiling) = max_rss_mb {
            if hwm_kb > ceiling * 1024 {
                eprintln!(
                    "bench_pr8: RSS gate failed at {elements} elements: \
                     VmHWM {} MB > ceiling {ceiling} MB",
                    hwm_kb / 1024
                );
                rss_failed = true;
            }
        }
    }

    std::fs::write(&out_path, &lines).expect("failed to write the bench report");
    eprintln!("wrote {out_path}");

    if rss_failed {
        return std::process::ExitCode::from(1);
    }
    if let Some(baseline) = check_path {
        return check(&baseline, &current);
    }
    std::process::ExitCode::SUCCESS
}

/// The `--check` gate: every scale point present in both reports must
/// keep at least [`REGRESSION_FLOOR`] of its baseline throughput.
/// Points only one side ran (a capped smoke run against a full
/// baseline) are skipped — the cap must not read as a regression.
fn check(baseline_path: &str, current: &[(usize, f64)]) -> std::process::ExitCode {
    let source = match std::fs::read_to_string(baseline_path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("bench_pr8: cannot read baseline {baseline_path}: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    let mut baseline = Vec::new();
    for line in source.lines().filter(|l| !l.trim().is_empty()) {
        let fields = match parse_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                eprintln!("bench_pr8: malformed baseline line: {e}");
                return std::process::ExitCode::from(2);
            }
        };
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, value)| value)
        };
        if get("record").and_then(|v| v.as_str()) != Some("scale") {
            continue;
        }
        match (
            get("elements").and_then(|v| v.as_int()),
            get("elements_per_sec").and_then(|v| v.as_f64()),
        ) {
            (Some(elements), Some(throughput)) => {
                baseline.push((elements as usize, throughput));
            }
            _ => {
                eprintln!("bench_pr8: baseline scale line is missing elements/elements_per_sec");
                return std::process::ExitCode::from(2);
            }
        }
    }
    if baseline.is_empty() {
        eprintln!("bench_pr8: baseline {baseline_path} has no scale records");
        return std::process::ExitCode::from(2);
    }

    let mut failed = false;
    let mut compared = 0;
    for (elements, was) in &baseline {
        let Some((_, now)) = current.iter().find(|(n, _)| n == elements) else {
            continue;
        };
        compared += 1;
        let ratio = now / was.max(1e-12);
        let verdict = if ratio < REGRESSION_FLOOR {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_pr8: {verdict} {elements} elements: {now:.0} vs baseline {was:.0} \
             elements/sec ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
    }
    if compared == 0 {
        eprintln!("bench_pr8: no scale points shared with baseline {baseline_path}");
        return std::process::ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "bench_pr8: throughput regression gate failed (floor: {:.0}% of baseline)",
            REGRESSION_FLOOR * 100.0
        );
        std::process::ExitCode::from(1)
    } else {
        println!("bench_pr8: throughput gate passed for {compared} scale point(s)");
        std::process::ExitCode::SUCCESS
    }
}

fn usage() -> std::process::ExitCode {
    eprintln!(
        "usage: bench_pr8 [--out <path>] [--check <baseline>] [--max-elements <N>] \
         [--max-rss-mb <MB>]"
    );
    std::process::ExitCode::from(2)
}
