//! Fig. 5: instruction mix breakdown, real vs proxy.
use dmpb_bench::generate_suite;
use dmpb_metrics::table::{fmt_percent, TextTable};

fn main() {
    let suite = generate_suite();
    let mut t = TextTable::new(
        "Fig. 5 — Instruction mix breakdown (real vs proxy)",
        &[
            "workload", "side", "integer", "fp", "load", "store", "branch",
        ],
    );
    for r in suite.reports() {
        for (side, mix) in [
            ("real", r.real_metrics.instruction_mix),
            ("proxy", r.proxy_metrics.instruction_mix),
        ] {
            t.add_row(&[
                r.kind.to_string(),
                side.to_string(),
                fmt_percent(mix.integer),
                fmt_percent(mix.floating_point),
                fmt_percent(mix.load),
                fmt_percent(mix.store),
                fmt_percent(mix.branch),
            ]);
        }
    }
    println!("{}", t.render());
}
