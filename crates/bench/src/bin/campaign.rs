//! The campaign driver: runs a scenario file through the campaign engine,
//! prints the per-cell table, optionally persists/serves results through
//! a content-addressed store, and gates on regressions.
//!
//! ```text
//! campaign <scenario.toml> [options]
//!   --store <path>            persistent result store (JSON lines);
//!                             re-runs skip already-computed cells
//!   --baseline <path>         diff this run against a stored report and
//!                             exit 1 on accuracy regressions / changed
//!                             or missing cells
//!   --write-baseline <path>   write this run's cells as a baseline
//!   --workers <N>             worker-pool width (scenario [executor]
//!                             wins for its own run)
//!   --expect-hit-ratio <R>    exit 1 if fewer than R of the cells were
//!                             served from the store (CI warm-run gate)
//!   --profile-out <path>      enable kernel-execution profiling and dump
//!                             the per-kind profile (JSON lines) after
//!                             the run; results are unchanged
//!   --chunk-elements <N>      stream sample executions in granule-aligned
//!                             chunks of at most N elements (bounded peak
//!                             RSS; results are unchanged; scenario
//!                             [executor] chunk_elements wins for its run)
//!   --store-shards <N>        open --store in the sharded layout with N
//!                             segments (a legacy single-file store is
//!                             migrated in place; an existing sharded
//!                             store keeps its own segment count)
//!   --population-size <N>     override (or create) the scenario's
//!                             [population] with N synthetic workloads
//!   --population-seed <S>     override the population base seed
//!                             (decimal or 0x-prefixed hex)
//!   --population-family <F>   override the population topology family
//!                             (chain | fork-join | diamond | layered |
//!                             mixed)
//!   --population-budget-secs <B>
//!                             override the population duration budget;
//!                             members beyond the modeled budget are
//!                             truncated deterministically by rank
//!   --describe-population     print the budgeted population as JSON
//!                             lines (one member per line) and exit
//!                             without running the campaign
//!
//! campaign --compact-store <path>
//!   standalone maintenance mode: rewrites the store dropping records
//!   shadowed by first-wins dedup (corrupt lines and torn tails are
//!   dropped too), then exits.  On a sharded store directory every
//!   segment is compacted, cross-shard duplicates are dropped, misrouted
//!   records re-routed home, and the sidecar index rebuilt atomically;
//!   per-shard stats are printed.
//! ```
//!
//! Exit codes: 0 success, 1 gate failure (regression or hit-ratio miss),
//! 2 usage / file / parse errors.

use std::process::ExitCode;
use std::sync::Arc;

use dmpb_motifs::workers::WorkerPool;
use dmpb_population::{PopulationGenerator, TopologyFamily};
use dmpb_scenario::runner::DEFAULT_WORKERS;
use dmpb_scenario::{
    compact_sharded_store, compact_store, read_records, CampaignRunner, ResultStore, Scenario,
};

struct Options {
    scenario_path: String,
    store: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    workers: Option<usize>,
    chunk_elements: Option<usize>,
    store_shards: Option<usize>,
    expect_hit_ratio: Option<f64>,
    profile_out: Option<String>,
    compact_store: Option<String>,
    describe_population: bool,
    population_size: Option<u32>,
    population_seed: Option<u64>,
    population_family: Option<TopologyFamily>,
    population_budget_secs: Option<f64>,
}

/// Seeds arrive as decimal or `0x`-prefixed hex (the form the campaign
/// itself prints digests and fingerprints in).
fn parse_seed(raw: &str) -> Option<u64> {
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: campaign <scenario.toml> [--store <path>] [--store-shards <N>] \
         [--baseline <path>] [--write-baseline <path>] [--workers <N>] \
         [--chunk-elements <N>] [--expect-hit-ratio <R>] [--profile-out <path>] \
         [--population-size <N>] [--population-seed <S>] [--population-family <F>] \
         [--population-budget-secs <B>] [--describe-population]\n\
         \u{20}      campaign --compact-store <path>"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        scenario_path: String::new(),
        store: None,
        baseline: None,
        write_baseline: None,
        workers: None,
        chunk_elements: None,
        store_shards: None,
        expect_hit_ratio: None,
        profile_out: None,
        compact_store: None,
        describe_population: false,
        population_size: None,
        population_seed: None,
        population_family: None,
        population_budget_secs: None,
    };
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| {
                eprintln!("campaign: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--store" => options.store = Some(value_for("--store")?),
            "--baseline" => options.baseline = Some(value_for("--baseline")?),
            "--write-baseline" => options.write_baseline = Some(value_for("--write-baseline")?),
            "--workers" => {
                options.workers = Some(value_for("--workers")?.parse().map_err(|_| {
                    eprintln!("campaign: --workers needs a positive integer");
                    usage()
                })?)
            }
            "--chunk-elements" => {
                let n: usize = value_for("--chunk-elements")?.parse().map_err(|_| {
                    eprintln!("campaign: --chunk-elements needs a positive integer");
                    usage()
                })?;
                if n == 0 {
                    eprintln!("campaign: --chunk-elements needs a positive integer");
                    return Err(usage());
                }
                options.chunk_elements = Some(n);
            }
            "--store-shards" => {
                let n: usize = value_for("--store-shards")?.parse().map_err(|_| {
                    eprintln!("campaign: --store-shards needs a positive integer");
                    usage()
                })?;
                if n == 0 {
                    eprintln!("campaign: --store-shards needs a positive integer");
                    return Err(usage());
                }
                options.store_shards = Some(n);
            }
            "--compact-store" => options.compact_store = Some(value_for("--compact-store")?),
            "--expect-hit-ratio" => {
                let ratio: f64 = value_for("--expect-hit-ratio")?.parse().map_err(|_| {
                    eprintln!("campaign: --expect-hit-ratio needs a number in [0, 1]");
                    usage()
                })?;
                // NaN fails `contains` too — `hit_ratio() < NaN` is never
                // true, which would silently disable the gate.
                if !(0.0..=1.0).contains(&ratio) {
                    eprintln!("campaign: --expect-hit-ratio needs a number in [0, 1]");
                    return Err(usage());
                }
                options.expect_hit_ratio = Some(ratio);
            }
            "--profile-out" => options.profile_out = Some(value_for("--profile-out")?),
            "--describe-population" => options.describe_population = true,
            "--population-size" => {
                let n: u32 = value_for("--population-size")?.parse().unwrap_or(0);
                if n == 0 {
                    eprintln!("campaign: --population-size needs a positive integer");
                    return Err(usage());
                }
                options.population_size = Some(n);
            }
            "--population-seed" => {
                options.population_seed =
                    Some(parse_seed(&value_for("--population-seed")?).ok_or_else(|| {
                        eprintln!("campaign: --population-seed needs a decimal or 0x-prefixed u64");
                        usage()
                    })?)
            }
            "--population-family" => {
                options.population_family = Some(
                    value_for("--population-family")?
                        .parse()
                        .map_err(|e: String| {
                            eprintln!("campaign: --population-family: {e}");
                            usage()
                        })?,
                )
            }
            "--population-budget-secs" => {
                let budget: f64 = value_for("--population-budget-secs")?
                    .parse()
                    .map_err(|_| {
                        eprintln!("campaign: --population-budget-secs needs a positive number");
                        usage()
                    })?;
                if !(budget > 0.0 && budget.is_finite()) {
                    eprintln!("campaign: --population-budget-secs needs a positive number");
                    return Err(usage());
                }
                options.population_budget_secs = Some(budget);
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                eprintln!("campaign: unknown flag `{other}`");
                return Err(usage());
            }
            path if options.scenario_path.is_empty() => options.scenario_path = path.to_string(),
            _ => return Err(usage()),
        }
    }
    if options.scenario_path.is_empty() && options.compact_store.is_none() {
        return Err(usage());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(code) => return code,
    };

    if let Some(path) = &options.compact_store {
        let target = std::path::Path::new(path);
        if target.is_dir() {
            match compact_sharded_store(target) {
                Ok(stats) => {
                    for (shard, stats) in stats.iter().enumerate() {
                        println!(
                            "campaign: compacted {path} segment {shard}: {} record(s) kept, \
                             {} record(s) dropped",
                            stats.kept, stats.dropped
                        );
                    }
                    let kept: usize = stats.iter().map(|s| s.kept).sum();
                    let dropped: usize = stats.iter().map(|s| s.dropped).sum();
                    println!(
                        "campaign: compacted {path}: {kept} record(s) kept, {dropped} \
                         record(s) dropped across {} segment(s); sidecar index rebuilt",
                        stats.len()
                    );
                }
                Err(e) => {
                    eprintln!("campaign: cannot compact {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            if options.scenario_path.is_empty() {
                return ExitCode::SUCCESS;
            }
        } else {
            match compact_store(target) {
                Ok(stats) => {
                    println!(
                        "campaign: compacted {path}: {} record(s) kept, {} shadowed record(s) \
                         dropped",
                        stats.kept, stats.dropped
                    );
                    if options.scenario_path.is_empty() {
                        return ExitCode::SUCCESS;
                    }
                }
                Err(e) => {
                    eprintln!("campaign: cannot compact {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let source = match std::fs::read_to_string(&options.scenario_path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("campaign: cannot read {}: {e}", options.scenario_path);
            return ExitCode::from(2);
        }
    };
    let mut scenario = match Scenario::parse(&source) {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("campaign: {}: {e}", options.scenario_path);
            return ExitCode::from(2);
        }
    };

    // The --population-* flags override (or, for a scenario without a
    // [population] section, create from defaults) the synthetic
    // population spec; the merged spec is re-validated so flag
    // combinations obey the same rules as the DSL.
    if options.population_size.is_some()
        || options.population_seed.is_some()
        || options.population_family.is_some()
        || options.population_budget_secs.is_some()
    {
        let mut spec = scenario.population.unwrap_or_default();
        if let Some(size) = options.population_size {
            spec.size = size;
        }
        if let Some(seed) = options.population_seed {
            spec.base_seed = seed;
        }
        if let Some(family) = options.population_family {
            spec.family = family;
        }
        if let Some(budget) = options.population_budget_secs {
            spec.duration_budget_secs = Some(budget);
        }
        if let Err(e) = spec.validate() {
            eprintln!("campaign: invalid population overrides: {e}");
            return ExitCode::from(2);
        }
        scenario.population = Some(spec);
    }

    if options.describe_population {
        let Some(plan) = scenario.population_plan() else {
            eprintln!(
                "campaign: --describe-population needs a [population] section in the \
                 scenario or --population-* flags"
            );
            return ExitCode::from(2);
        };
        // Budget truncation keeps a rank prefix, and a member's identity
        // is independent of the budget, so the original spec's generator
        // reproduces exactly the members the campaign would run.
        let generator = PopulationGenerator::new(plan.spec)
            .expect("population spec was validated at parse/override time");
        for rank in 0..plan.planned {
            println!("{}", generator.member(rank).describe_json());
        }
        eprintln!(
            "campaign: described {} of {} population member(s) across {} axis \
             combination(s){}",
            plan.planned,
            plan.full_size,
            plan.combos,
            if plan.truncated() {
                " [duration budget truncated]"
            } else {
                ""
            }
        );
        return ExitCode::SUCCESS;
    }

    // The campaign's worker pool doubles as the sharded store's
    // open-time segment scanner, so the process runs one thread fleet
    // (the calling thread participates: width − 1 pool threads).
    let pool = Arc::new(WorkerPool::new(
        options
            .workers
            .unwrap_or(DEFAULT_WORKERS)
            .max(1)
            .saturating_sub(1),
    ));
    let store = match &options.store {
        None => ResultStore::in_memory(),
        Some(path) => {
            let sharded = options.store_shards.is_some() || std::path::Path::new(path).is_dir();
            let opened = if sharded {
                ResultStore::open_sharded_with_pool(
                    path,
                    options
                        .store_shards
                        .unwrap_or(dmpb_scenario::DEFAULT_STORE_SHARDS),
                    Some(&pool),
                )
            } else {
                ResultStore::open(path)
            };
            match opened {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("campaign: cannot open store: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let preloaded = store.stats().entries;
    let mut runner = CampaignRunner::with_store(store).with_worker_pool(pool);
    if let Some(workers) = options.workers {
        runner = runner.with_workers(workers);
    }
    if options.chunk_elements.is_some() {
        runner = runner.with_chunk_elements(options.chunk_elements);
    }
    if options.profile_out.is_some() {
        runner = runner.with_kernel_profiling(true);
    }

    println!(
        "campaign `{}`: {}{}",
        scenario.name,
        if scenario.description.is_empty() {
            "(no description)"
        } else {
            &scenario.description
        },
        match &options.store {
            Some(path) => format!(" [store: {path}, {preloaded} preloaded]"),
            None => String::new(),
        }
    );
    let matrix = scenario.matrix_size();
    let report = match runner.try_run(&scenario) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(1);
        }
    };
    if report.outcomes.is_empty() {
        // A fully filtered campaign is legitimate (a sweep axis can
        // exclude everything on some configurations): report it and skip
        // the gates that are meaningless without cells, don't fail.
        println!(
            "campaign: scenario expanded to zero cells ({matrix} before filters) — \
             nothing to run, gates skipped"
        );
    }
    if !report.outcomes.is_empty() && report.outcomes.len() != matrix {
        println!(
            "{} of {} matrix cells kept by include/exclude filters",
            report.outcomes.len(),
            matrix
        );
    }
    println!("{}", report.summary_table().render());
    println!(
        "result store: {} of {} cells served (hit ratio {:.2}); campaign digest {:016x}",
        report.cache_hits(),
        report.outcomes.len(),
        report.hit_ratio(),
        report.digest(),
    );

    let mut failed = false;
    if let Some(path) = &options.baseline {
        match read_records(std::path::Path::new(path)) {
            Ok(baseline) => {
                let diff = report.diff(&baseline);
                println!("{}", diff.summary());
                for (cell, was, now) in &diff.regressed {
                    println!(
                        "  REGRESSED {} on {} ({}): accuracy {:.4} -> {:.4}",
                        cell.workload, cell.cluster, cell.architecture, was, now
                    );
                }
                for (cell, _) in &diff.changed {
                    println!(
                        "  CHANGED   {} on {} ({}): result differs from baseline (fingerprint {:016x})",
                        cell.workload, cell.cluster, cell.architecture, cell.fingerprint
                    );
                }
                for cell in &diff.missing {
                    println!(
                        "  MISSING   {} on {} ({}): baseline cell not produced by this run",
                        cell.workload, cell.cluster, cell.architecture
                    );
                }
                if diff.is_regression() {
                    eprintln!("campaign: baseline gate failed");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("campaign: cannot read baseline: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(expected) = options.expect_hit_ratio {
        if report.outcomes.is_empty() {
            // Zero cells means zero store lookups: there is no hit ratio
            // to gate on, and failing would misreport an empty (fully
            // filtered) campaign as a cold store.
            println!(
                "campaign: hit-ratio gate skipped: no cells ran, so the store saw no lookups \
                 (0 hits, 0 misses)"
            );
        } else if report.hit_ratio() < expected {
            eprintln!(
                "campaign: hit-ratio gate failed: {} of {} cells store-served \
                 ({} hits, {} misses; ratio {:.2}) < expected {expected:.2}",
                report.cache_hits(),
                report.outcomes.len(),
                runner.store_stats().hits,
                runner.store_stats().misses,
                report.hit_ratio()
            );
            failed = true;
        }
    }

    if let Some(path) = &options.profile_out {
        let profile = runner.kernel_profile();
        if let Err(e) = std::fs::write(path, profile.to_jsonl()) {
            eprintln!("campaign: cannot write profile {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote kernel profile {path} ({} kernel invocations across {} kinds)",
            profile.total_invocations(),
            profile.kinds.iter().filter(|k| k.invocations > 0).count()
        );
    }

    if let Some(path) = &options.write_baseline {
        if let Err(e) = std::fs::write(path, report.to_lines()) {
            eprintln!("campaign: cannot write baseline {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote baseline {path} ({} cells)", report.outcomes.len());
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
