//! Emits `BENCH_PR9.json` — the PR 9 point of the repo's performance
//! trajectory: result-store sharding.  One synthetic campaign-scale
//! record set is pushed through both store layouts to pin the two
//! headline wins:
//!
//! * **Concurrent inserts** — 8 writers filling a sharded store must
//!   sustain at least [`MIN_INSERT_SPEEDUP`]x the insert throughput of
//!   the same writers contending on the legacy single-lock store.  The
//!   legacy store serializes, appends and flushes inside every insert
//!   (its pre-shard durability contract), so its rate includes
//!   persistence; the sharded store's insert is the campaign workers'
//!   critical path only — per-shard lock + parked `Arc` — with the
//!   batch serialize/append/flush deferred to one `sync` per campaign,
//!   which is timed and reported alongside (`sharded_sync_secs`, and
//!   `sharded_synced_records_per_sec` for the end-to-end rate).
//! * **Warm open** — opening a ≥100k-record store via the sidecar index
//!   (no segment replay) must be at least [`MIN_OPEN_SPEEDUP`]x faster
//!   than the legacy full-replay open of the same records.  The
//!   parallel-scan cold open (sidecar deleted) is reported as an
//!   ungated third point.
//!
//! Captured metrics, one JSON object per line (parseable with
//! `dmpb_metrics::json::parse_object`):
//!
//! * `record:"bench"` — record count, writer count, shard count;
//! * `record:"insert"` — legacy and sharded insert throughput
//!   (records/second) and their ratio (the ≥4x gate);
//! * `record:"open"` — legacy replay, sidecar and parallel-scan open
//!   wall times, and the replay/sidecar ratio (the ≥5x gate).
//!
//! ```text
//! bench_pr9 [--out <path>] [--check <baseline>] [--records <N>]
//!           [--writers <N>]
//!   --out <path>       where to write the report (default BENCH_PR9.json)
//!   --check <baseline> compare throughput against a stored report; exit 1
//!                      if a shared metric regressed by more than 25%
//!   --records <N>      store size for both phases (default 100000)
//!   --writers <N>      concurrent writers in the insert phase (default 8)
//! ```
//!
//! The absolute speedup gates apply on every run; `--check` layers the
//! relative regression gate on top.  Setting `DMPB_PERF_SKIP` (to
//! anything but `0` or the empty string) skips the run with a notice and
//! exit code 0 — the escape hatch for congested CI runners.

use std::path::{Path, PathBuf};
use std::time::Instant;

use dmpb_core::runner::SuiteRunner;
use dmpb_metrics::json::{parse_object, ObjectWriter};
use dmpb_motifs::workers::WorkerPool;
use dmpb_scenario::{CellResult, ResultStore, Scenario, SIDECAR_FILE};
use dmpb_workloads::ClusterConfig;

/// Segment count for the sharded side: matches the writer default, so
/// the 8 writers mostly land on 8 different locks.
const SHARDS: usize = 8;

/// The insert phase's absolute gate: sharded concurrent-insert
/// throughput over the single-lock legacy baseline.
const MIN_INSERT_SPEEDUP: f64 = 4.0;

/// The open phase's absolute gate: legacy full-replay open time over
/// the sidecar-index open time.
const MIN_OPEN_SPEEDUP: f64 = 5.0;

/// A metric regresses the `--check` gate when it falls below this
/// fraction of the baseline's (matches `bench_pr7`/`bench_pr8`).
const REGRESSION_FLOOR: f64 = 0.75;

/// One real computed record; every synthetic record is this one under a
/// different fingerprint, so stored lines have campaign-realistic width.
fn template_result() -> CellResult {
    let cell = Scenario::with_defaults("bench-pr9").expand()[0].clone();
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
    let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
    CellResult::compute(&cell, &run, 1)
}

/// Fills `store` with `records` synthetic records from `writers`
/// concurrent workers (disjoint fingerprint ranges: every insert is
/// fresh).  Returns `(insert records/sec, sync seconds)`: the first is
/// the wall time the writers spend blocked on `insert` — the campaign
/// workers' critical path — and the second is the amortized batch
/// (serialize + append + flush + sidecar) that `sync` runs once per
/// campaign.  The legacy store does all of that work inside `insert`
/// (its contract is a flush per record), so its sync is a no-op and
/// its insert rate already includes persistence.
fn insert_throughput(
    store: &ResultStore,
    template: &CellResult,
    records: u64,
    writers: usize,
) -> (f64, f64) {
    let pool = WorkerPool::new(writers);
    let start = Instant::now();
    pool.scope(|scope| {
        for worker in 0..writers as u64 {
            scope.spawn(move |_| {
                let mut i = worker;
                while i < records {
                    let mut record = template.clone();
                    record.fingerprint = 0x9000_0000 + i;
                    store.insert(record).expect("bench insert must persist");
                    i += writers as u64;
                }
            });
        }
    });
    let insert_rate = records as f64 / start.elapsed().as_secs_f64().max(1e-12);
    let start = Instant::now();
    store.sync().expect("bench sync must succeed");
    (insert_rate, start.elapsed().as_secs_f64())
}

/// Opens a store and returns (wall seconds, entry count).
fn timed_open(path: &Path) -> (f64, usize) {
    let start = Instant::now();
    let store = ResultStore::open(path).expect("bench store must open");
    let secs = start.elapsed().as_secs_f64();
    (secs, store.stats().entries)
}

fn main() -> std::process::ExitCode {
    if std::env::var("DMPB_PERF_SKIP").is_ok_and(|v| !v.is_empty() && v != "0") {
        println!("bench_pr9: skipped (DMPB_PERF_SKIP is set); no report written, no gate applied");
        return std::process::ExitCode::SUCCESS;
    }

    let mut out_path = "BENCH_PR9.json".to_string();
    let mut check_path = None;
    let mut records: u64 = 100_000;
    let mut writers: usize = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_pr9: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--records" => match value("--records").parse() {
                Ok(n) if n > 0 => records = n,
                _ => {
                    eprintln!("bench_pr9: bad --records");
                    return std::process::ExitCode::from(2);
                }
            },
            "--writers" => match value("--writers").parse() {
                Ok(n) if n > 0 => writers = n,
                _ => {
                    eprintln!("bench_pr9: bad --writers");
                    return std::process::ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }

    let scratch: PathBuf =
        std::env::temp_dir().join(format!("dmpb-bench-pr9-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");
    let template = template_result();

    // Phase 1: concurrent-insert throughput, legacy single-lock
    // flush-per-record baseline vs the sharded buffered store.
    let legacy_path = scratch.join("legacy.jsonl");
    let legacy_store = ResultStore::open(&legacy_path).expect("legacy store opens");
    let (legacy_rate, _) = insert_throughput(&legacy_store, &template, records, writers);
    drop(legacy_store);
    println!(
        "bench_pr9: legacy insert: {legacy_rate:.0} records/sec \
         ({writers} writers; serialize + append + flush per record)"
    );

    let sharded_path = scratch.join("sharded");
    let sharded_store =
        ResultStore::open_sharded(&sharded_path, SHARDS).expect("sharded store opens");
    let (sharded_rate, sync_secs) = insert_throughput(&sharded_store, &template, records, writers);
    drop(sharded_store);
    let insert_speedup = sharded_rate / legacy_rate.max(1e-12);
    let synced_rate = records as f64 / (records as f64 / sharded_rate + sync_secs).max(1e-12);
    println!(
        "bench_pr9: sharded insert: {sharded_rate:.0} records/sec \
         ({SHARDS} shards; {insert_speedup:.1}x the single-lock baseline); \
         amortized sync {sync_secs:.3}s ({synced_rate:.0} records/sec to durability)"
    );

    // Phase 2: open latency on the same ≥100k-record stores.  The
    // legacy open replays every line; the sidecar open parses only the
    // index; the scan open (sidecar deleted) replays segments in
    // parallel and is reported ungated.
    let (replay_secs, replay_entries) = timed_open(&legacy_path);
    let (sidecar_secs, sidecar_entries) = timed_open(&sharded_path);
    assert_eq!(
        replay_entries, sidecar_entries,
        "both stores must hold the same records"
    );
    {
        // Sanity: the sidecar path really was taken.
        let store = ResultStore::open(&sharded_path).expect("sharded store reopens");
        assert!(
            store.opened_from_sidecar(),
            "warm open must be served by the sidecar index"
        );
    }
    std::fs::remove_file(sharded_path.join(SIDECAR_FILE)).expect("sidecar removable");
    let (scan_secs, scan_entries) = timed_open(&sharded_path);
    assert_eq!(scan_entries, sidecar_entries);
    let open_speedup = replay_secs / sidecar_secs.max(1e-12);
    println!(
        "bench_pr9: open {records} records: legacy replay {replay_secs:.3}s, \
         sidecar {sidecar_secs:.3}s ({open_speedup:.1}x), parallel scan {scan_secs:.3}s"
    );
    std::fs::remove_dir_all(&scratch).ok();

    let mut lines = String::new();
    let mut header = ObjectWriter::new();
    header.field_str("record", "bench");
    header.field_int("pr", 9);
    header.field_int("records", records as i64);
    header.field_int("writers", writers as i64);
    header.field_int("shards", SHARDS as i64);
    lines.push_str(&header.finish());
    lines.push('\n');
    let mut w = ObjectWriter::new();
    w.field_str("record", "insert");
    w.field_f64("legacy_records_per_sec", legacy_rate);
    w.field_f64("sharded_records_per_sec", sharded_rate);
    w.field_f64("sharded_sync_secs", sync_secs);
    w.field_f64("sharded_synced_records_per_sec", synced_rate);
    w.field_f64("speedup", insert_speedup);
    lines.push_str(&w.finish());
    lines.push('\n');
    let mut w = ObjectWriter::new();
    w.field_str("record", "open");
    w.field_f64("replay_open_secs", replay_secs);
    w.field_f64("sidecar_open_secs", sidecar_secs);
    w.field_f64("scan_open_secs", scan_secs);
    w.field_f64("speedup", open_speedup);
    lines.push_str(&w.finish());
    lines.push('\n');
    std::fs::write(&out_path, &lines).expect("failed to write the bench report");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if insert_speedup < MIN_INSERT_SPEEDUP {
        eprintln!(
            "bench_pr9: insert gate failed: {insert_speedup:.2}x < required \
             {MIN_INSERT_SPEEDUP:.0}x over the single-lock baseline"
        );
        failed = true;
    }
    if open_speedup < MIN_OPEN_SPEEDUP {
        eprintln!(
            "bench_pr9: open gate failed: {open_speedup:.2}x < required \
             {MIN_OPEN_SPEEDUP:.0}x over the full-replay open"
        );
        failed = true;
    }
    if let Some(baseline) = check_path {
        let rates = [
            ("insert", "sharded_records_per_sec", sharded_rate),
            ("open", "speedup", open_speedup),
        ];
        if !check(&baseline, records, &rates) {
            failed = true;
        }
    }
    if failed {
        std::process::ExitCode::from(1)
    } else {
        println!("bench_pr9: all gates passed");
        std::process::ExitCode::SUCCESS
    }
}

/// The `--check` gate: every metric present in both reports must keep
/// at least [`REGRESSION_FLOOR`] of its baseline value.  Both speedups
/// grow with the store size, so a baseline captured at a different
/// `--records` is not comparable — the check refuses rather than
/// reporting a phantom regression.
fn check(baseline_path: &str, records: u64, rates: &[(&str, &str, f64)]) -> bool {
    let source = match std::fs::read_to_string(baseline_path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("bench_pr9: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    for line in source.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(fields) = parse_object(line) else {
            continue;
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        if get("record").and_then(|v| v.as_str()) != Some("bench") {
            continue;
        }
        if let Some(was) = get("records").and_then(|v| v.as_int()) {
            if was != records as i64 {
                eprintln!(
                    "bench_pr9: baseline {baseline_path} was captured at {was} records, \
                     this run used {records} — rerun with --records {was} to compare"
                );
                return false;
            }
        }
    }
    let mut compared = 0;
    let mut ok = true;
    for line in source.lines().filter(|l| !l.trim().is_empty()) {
        let fields = match parse_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                eprintln!("bench_pr9: malformed baseline line: {e}");
                return false;
            }
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(record) = get("record").and_then(|v| v.as_str()) else {
            continue;
        };
        for (kind, key, now) in rates {
            if record != *kind {
                continue;
            }
            let Some(was) = get(key).and_then(|v| v.as_f64()) else {
                eprintln!("bench_pr9: baseline {kind} record is missing {key}");
                return false;
            };
            compared += 1;
            let ratio = now / was.max(1e-12);
            let verdict = if ratio < REGRESSION_FLOOR {
                ok = false;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "bench_pr9: {verdict} {kind}.{key}: {now:.1} vs baseline {was:.1} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_pr9: no metrics shared with baseline {baseline_path}");
        return false;
    }
    ok
}

fn usage() -> std::process::ExitCode {
    eprintln!(
        "usage: bench_pr9 [--out <path>] [--check <baseline>] [--records <N>] [--writers <N>]"
    );
    std::process::ExitCode::from(2)
}
