//! Fig. 6: disk I/O bandwidth of real workloads vs proxies.
use dmpb_bench::generate_suite;
use dmpb_metrics::table::TextTable;

fn main() {
    let suite = generate_suite();
    let mut t = TextTable::new(
        "Fig. 6 — Disk I/O bandwidth (MB/s), real vs proxy",
        &["workload", "real", "proxy"],
    );
    for r in suite.reports() {
        t.add_row(&[
            r.kind.to_string(),
            format!("{:.2}", r.real_metrics.disk_io_bw_mbps),
            format!("{:.2}", r.proxy_metrics.disk_io_bw_mbps),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: TeraSort 33.99 vs 32.04 MB/s; AI workloads ~0.2-0.5 MB/s.");
}
