//! Table VII: execution time on the re-configured three-node cluster.
use dmpb_bench::PAPER_TABLE7;
use dmpb_core::generator::ProxyGenerator;
use dmpb_metrics::table::{fmt_speedup, TextTable};
use dmpb_workloads::hadoop::{KMeans, PageRank, TeraSort};
use dmpb_workloads::tensorflow::{AlexNet, InceptionV3};
use dmpb_workloads::workload::Workload;
use dmpb_workloads::ClusterConfig;

fn main() {
    let cluster = ClusterConfig::three_node_westmere_64gb();
    let generator = ProxyGenerator::new(cluster);
    // Section IV-B shortens the AI runs: 3 000 and 200 steps.
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(TeraSort::paper_configuration()),
        Box::new(KMeans::paper_configuration()),
        Box::new(PageRank::paper_configuration()),
        Box::new(AlexNet::reconfigured(3_000)),
        Box::new(InceptionV3::reconfigured(200)),
    ];
    let mut t = TextTable::new(
        "Table VII — Execution time on the 3-node / 64 GB cluster",
        &[
            "workload",
            "real (paper)",
            "proxy (paper)",
            "real (model)",
            "proxy (model)",
            "speedup (model)",
        ],
    );
    for (w, (kind, paper_real, paper_proxy)) in workloads.iter().zip(PAPER_TABLE7) {
        let r = generator.generate(w.as_ref());
        t.add_row(&[
            kind.to_string(),
            format!("{paper_real:.0} s"),
            format!("{paper_proxy:.2} s"),
            format!("{:.0} s", r.real_metrics.runtime_secs),
            format!("{:.2} s", r.proxy_metrics.runtime_secs),
            fmt_speedup(r.speedup),
        ]);
    }
    println!("{}", t.render());
}
