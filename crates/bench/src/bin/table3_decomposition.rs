//! Table III: the eight suite workloads and their motif decompositions
//! (the paper's five plus the Spark stack twins, which reuse their Hadoop
//! twin's decomposition).
use dmpb_core::decompose::decompose;
use dmpb_metrics::table::TextTable;
use dmpb_workloads::all_workloads;

fn main() {
    let mut t = TextTable::new(
        "Table III — Real benchmarks and their proxy decompositions",
        &[
            "workload",
            "pattern",
            "data",
            "class (weight)",
            "motif implementations",
            "DAG shape",
        ],
    );
    for w in all_workloads() {
        let d = decompose(w.as_ref());
        let classes = d
            .class_ratios
            .iter()
            .map(|(c, r)| format!("{c} ({:.0}%)", r * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        let motifs = d
            .components
            .iter()
            .map(|c| c.motif.name())
            .collect::<Vec<_>>()
            .join(", ");
        t.add_row(&[
            w.name().to_string(),
            w.pattern().to_string(),
            w.input_descriptor().class.name().to_string(),
            classes,
            motifs,
            d.plan.shape_summary(),
        ]);
    }
    println!("{}", t.render());
}
