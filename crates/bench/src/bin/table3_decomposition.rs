//! Table III: the eight suite workloads and their motif decompositions
//! (the paper's five plus the Spark stack twins, which reuse their Hadoop
//! twin's decomposition).  The workload enumeration comes from the
//! `decomposition` scenario's campaign matrix — the same expansion path
//! every other paper-table binary uses — and decomposition itself is pure,
//! so no cells are executed.
use dmpb_core::decompose::decompose;
use dmpb_metrics::table::TextTable;
use dmpb_scenario::builtin;
use dmpb_workloads::workload_by_kind;

fn main() {
    let mut t = TextTable::new(
        "Table III — Real benchmarks and their proxy decompositions",
        &[
            "workload",
            "pattern",
            "data",
            "class (weight)",
            "motif implementations",
            "DAG shape",
        ],
    );
    for cell in builtin::decomposition().expand() {
        let w = workload_by_kind(cell.kind);
        let d = decompose(w.as_ref());
        let classes = d
            .class_ratios
            .iter()
            .map(|(c, r)| format!("{c} ({:.0}%)", r * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        let motifs = d
            .components
            .iter()
            .map(|c| c.motif.name())
            .collect::<Vec<_>>()
            .join(", ");
        t.add_row(&[
            w.name().to_string(),
            w.pattern().to_string(),
            w.input_descriptor().class.name().to_string(),
            classes,
            motifs,
            d.plan.shape_summary(),
        ]);
    }
    println!("{}", t.render());
}
