//! # dmpb-bench — experiment harness
//!
//! One binary per table / figure of the paper's evaluation (see DESIGN.md
//! for the index), plus Criterion benches over the real motif kernels and
//! the generated proxies.  This library holds the shared plumbing: the
//! scenario-campaign path the paper-table binaries render from, table
//! rendering, and the paper's reference numbers so every binary prints
//! "paper vs. measured" side by side.
//!
//! The sweep loops themselves live in `dmpb_scenario` — a paper-table
//! binary declares *which* built-in scenario it renders and how to format
//! a row, nothing else.

#![warn(missing_docs)]

use dmpb_core::generator::GenerationReport;
use dmpb_core::runner::SuiteRunner;
use dmpb_core::ProxySuite;
use dmpb_metrics::table::TextTable;
use dmpb_metrics::MetricId;
use dmpb_scenario::{CampaignReport, CampaignRunner, Scenario};
use dmpb_workloads::{ClusterConfig, WorkloadKind};

/// Paper-reported runtimes (seconds) on the five-node Westmere cluster
/// (Table VI): `(real, proxy)` per workload.  The paper evaluates exactly
/// the five workloads of [`WorkloadKind::PAPER_FIVE`]; the Spark variants
/// have no published numbers, so lookups for them return `None` /
/// [`f64::NAN`].
pub const PAPER_TABLE6: [(WorkloadKind, f64, f64); 5] = [
    (WorkloadKind::TeraSort, 1500.0, 11.02),
    (WorkloadKind::KMeans, 5971.0, 8.03),
    (WorkloadKind::PageRank, 1444.0, 9.03),
    (WorkloadKind::AlexNet, 1556.0, 10.02),
    (WorkloadKind::InceptionV3, 6782.0, 18.0),
];

/// Paper-reported runtimes on the re-configured three-node cluster
/// (Table VII).
pub const PAPER_TABLE7: [(WorkloadKind, f64, f64); 5] = [
    (WorkloadKind::TeraSort, 2721.0, 16.04),
    (WorkloadKind::KMeans, 7143.0, 14.03),
    (WorkloadKind::PageRank, 1693.0, 14.07),
    (WorkloadKind::AlexNet, 1333.0, 11.03),
    (WorkloadKind::InceptionV3, 5839.0, 19.04),
];

/// Paper-reported average accuracy per workload on the five-node cluster
/// (Fig. 4).
pub const PAPER_FIG4_ACCURACY: [(WorkloadKind, f64); 5] = [
    (WorkloadKind::TeraSort, 0.94),
    (WorkloadKind::KMeans, 0.91),
    (WorkloadKind::PageRank, 0.93),
    (WorkloadKind::AlexNet, 0.937),
    (WorkloadKind::InceptionV3, 0.926),
];

/// Paper-reported average accuracy on the new cluster configuration
/// (Fig. 9).
pub const PAPER_FIG9_ACCURACY: [(WorkloadKind, f64); 5] = [
    (WorkloadKind::TeraSort, 0.91),
    (WorkloadKind::KMeans, 0.91),
    (WorkloadKind::PageRank, 0.93),
    (WorkloadKind::AlexNet, 0.94),
    (WorkloadKind::InceptionV3, 0.93),
];

/// Paper-reported Westmere→Haswell runtime speedups (Fig. 10), real
/// workloads (the proxies track them closely).
pub const PAPER_FIG10_SPEEDUP: [(WorkloadKind, f64); 5] = [
    (WorkloadKind::TeraSort, 1.6),
    (WorkloadKind::KMeans, 1.8),
    (WorkloadKind::PageRank, 1.5),
    (WorkloadKind::AlexNet, 1.1),
    (WorkloadKind::InceptionV3, 1.3),
];

/// Runs a built-in scenario through the campaign engine on a fresh
/// in-memory result store — the one campaign-expansion path every
/// paper-table binary shares.  Returns the runner too so callers can
/// re-run (warm) and inspect store statistics.
pub fn run_campaign(scenario: &Scenario) -> (CampaignRunner, CampaignReport) {
    let runner = CampaignRunner::new();
    let report = runner.run(scenario);
    (runner, report)
}

/// A parallel suite runner against the Section III cluster; reuse one
/// runner across runs to benefit from the tuning cache.
pub fn suite_runner() -> SuiteRunner {
    SuiteRunner::new(ClusterConfig::five_node_westmere())
}

/// Generates the eight-proxy suite against the Section III cluster
/// (through the parallel runner's reports-only path).
pub fn generate_suite() -> ProxySuite {
    ProxySuite::generate_parallel(ClusterConfig::five_node_westmere())
}

/// Formats a metric id with value for table cells.
pub fn fmt_metric(report: &GenerationReport, id: MetricId) -> (String, String, String) {
    let real = report.real_metrics.get(id);
    let proxy = report.proxy_metrics.get(id);
    let acc = report.accuracy.get(id).unwrap_or(1.0);
    (
        format!("{real:.3}"),
        format!("{proxy:.3}"),
        format!("{:.1}%", acc * 100.0),
    )
}

/// Renders and prints a table.
pub fn print_table(table: &TextTable) {
    println!("{}", table.render());
}

/// The paper value lookup helper (`NaN` for workloads the paper does not
/// report, i.e. the Spark variants).
pub fn paper_value<const N: usize>(table: &[(WorkloadKind, f64); N], kind: WorkloadKind) -> f64 {
    table
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN)
}

/// Formats a paper-reported value with `fmt`, rendering workloads without
/// published numbers (the Spark variants, looked up as `NaN`) as an em
/// dash.
pub fn fmt_paper_or_dash(value: f64, fmt: impl Fn(f64) -> String) -> String {
    if value.is_nan() {
        "—".to_string()
    } else {
        fmt(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_cover_the_paper_workloads() {
        for kind in WorkloadKind::PAPER_FIVE {
            assert!(PAPER_TABLE6.iter().any(|(k, _, _)| *k == kind));
            assert!(PAPER_TABLE7.iter().any(|(k, _, _)| *k == kind));
            assert!(paper_value(&PAPER_FIG4_ACCURACY, kind) > 0.9);
            assert!(paper_value(&PAPER_FIG10_SPEEDUP, kind) >= 1.1);
        }
    }

    #[test]
    fn spark_workloads_have_no_paper_numbers() {
        for kind in WorkloadKind::ALL {
            let published = !paper_value(&PAPER_FIG4_ACCURACY, kind).is_nan();
            assert_eq!(
                published,
                WorkloadKind::PAPER_FIVE.contains(&kind),
                "{kind}"
            );
        }
        assert_eq!(fmt_paper_or_dash(f64::NAN, |v| format!("{v:.0} s")), "—");
        assert_eq!(fmt_paper_or_dash(1.5, |v| format!("{v:.2}x")), "1.50x");
    }

    #[test]
    fn paper_speedups_match_the_quoted_ratios() {
        // Table VI quotes 136x / 743x / 160x / 155x / 376x.
        let expected = [136.0, 743.0, 160.0, 155.0, 376.0];
        for ((_, real, proxy), expect) in PAPER_TABLE6.iter().zip(expected) {
            let speedup = real / proxy;
            assert!(
                (speedup - expect).abs() / expect < 0.01,
                "{speedup} vs {expect}"
            );
        }
    }
}
