//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! implements the subset of the criterion 0.5 API that the workspace's
//! benches use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — as a small but honest wall-clock harness:
//! each benchmark is warmed up, then timed over a fixed number of samples,
//! and the mean / min / max per-iteration times are printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `quick_sort/10000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes the per-sample iteration count so that very
        // fast routines are timed over enough iterations to be meaningful.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(5);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u32
        };
        self.iters_per_sample = iters;
        for _ in 0..self.samples.capacity().max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in warms up per call to
    /// [`Bencher::iter`] instead of per group.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in sizes measurement from
    /// [`Self::sample_size`] alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b));
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Finishes the group (a no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        run_one(&id, 10, |b| f(b));
        self.benchmarks_run += 1;
        self
    }
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{name:<60} mean {mean:>12.3?}   [{min:.3?} .. {max:.3?}]   ({} iters/sample)",
        bencher.iters_per_sample
    );
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("sort", 100).to_string(), "sort/100");
    }
}
