//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! provides the (deliberately small) `rand 0.8`-compatible API subset the
//! workspace uses: [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, `sample`
//! and `sample_iter`, and the [`distributions::Standard`] distribution.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high quality, and stable across platforms,
//! which is all the workspace needs (every consumer seeds explicitly; no
//! entropy-based constructors exist here on purpose).

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the raw word sources.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support for deterministic generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from the given range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    /// Converts the generator into an iterator of samples.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform sampling of a single value from a range-like object.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws a value in `[low, high]`.
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_uniform_inclusive(rng, low, high)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Lemire's widening-multiply range reduction; span is never
                // zero (empty ranges are rejected by the caller).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }

            fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as i64).wrapping_add(hi as i64)) as $t
            }

            fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                ((low as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + (high as f64 - low as f64) * unit;
                // Guard against rounding up to the excluded upper bound.
                if v as $t >= high { low } else { v as $t }
            }

            fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over random words.
pub mod distributions {
    use super::RngCore;

    /// A distribution that maps random words to values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator over samples of a distribution, returned by
    /// [`super::Rng::sample_iter`].
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
