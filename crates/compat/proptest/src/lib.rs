//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! implements the subset of the proptest API that the workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range strategies over integers and
//! floats, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: each test draws
//! `ProptestConfig::cases` deterministic inputs (seeded from the test name,
//! so runs are reproducible) and fails with the offending case number and
//! values via the normal panic machinery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Test-runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The deterministic value source handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates a source seeded from the (hashed) test name so each property
    /// gets an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{collection, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares `#[test]` functions checked against many random inputs.
///
/// Supports the subset of proptest's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by test
/// functions whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::new_value(&($strategy), &mut rng); )+
                    let case_desc = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} "),+),
                        case + 1, config.cases, $(&$arg),+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!("proptest failure in {}", case_desc);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 10u64..20, y in -4i64..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..100, 5..10)) {
            prop_assert!(v.len() >= 5 && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn float_ranges(x in -1.5f64..1.5) {
            prop_assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("abc");
        let mut b = TestRng::from_name("abc");
        let sa = (0u64..8)
            .map(|_| (0u64..1000).new_value(&mut a))
            .collect::<Vec<_>>();
        let sb = (0u64..8)
            .map(|_| (0u64..1000).new_value(&mut b))
            .collect::<Vec<_>>();
        assert_eq!(sa, sb);
    }
}
