//! The [`Workload`] trait and the registry of the eight modelled workloads
//! (the paper's five plus the three Spark variants).

use dmpb_datagen::DataDescriptor;
use dmpb_metrics::MetricVector;
use dmpb_motifs::{DagPlan, MotifClass, MotifKind};
use dmpb_perfmodel::profile::OpProfile;
use dmpb_perfmodel::ExecutionEngine;

use crate::cluster::ClusterConfig;
use crate::hadoop::{KMeans, PageRank, TeraSort};
use crate::spark::{SparkKMeans, SparkPageRank, SparkTeraSort};
use crate::tensorflow::{AlexNet, InceptionV3};

/// The software stack a workload runs on.
///
/// The companion data-motif characterisation paper profiles every big-data
/// motif on both Hadoop and Spark and shows the software stack dominates
/// microarchitectural behaviour — so the stack is a first-class axis of the
/// workload registry, not an implementation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Framework {
    /// Hadoop MapReduce on the JVM (HDFS spill/merge on every hop).
    Hadoop,
    /// Spark on the JVM (RDD lineage, in-memory caching, wide-only shuffle).
    Spark,
    /// TensorFlow's dataflow runtime with a parameter-server step loop.
    TensorFlow,
}

impl Framework {
    /// Reporting name of the stack.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Hadoop => "Hadoop",
            Framework::Spark => "Spark",
            Framework::TensorFlow => "TensorFlow",
        }
    }
}

impl std::fmt::Display for Framework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Framework {
    type Err = String;

    /// Parses a stack name, case-insensitively (`"Hadoop"`, `"spark"`,
    /// `"TensorFlow"`).  Round-trips with [`Framework::name`] /
    /// `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hadoop" => Ok(Framework::Hadoop),
            "spark" => Ok(Framework::Spark),
            "tensorflow" => Ok(Framework::TensorFlow),
            _ => Err(format!(
                "unknown framework `{s}` (expected Hadoop, Spark or TensorFlow)"
            )),
        }
    }
}

/// Identity of one of the eight modelled workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// Hadoop TeraSort.
    TeraSort,
    /// Hadoop K-means.
    KMeans,
    /// Hadoop PageRank.
    PageRank,
    /// TensorFlow AlexNet.
    AlexNet,
    /// TensorFlow Inception-V3.
    InceptionV3,
    /// Spark TeraSort.
    SparkTeraSort,
    /// Spark K-means.
    SparkKMeans,
    /// Spark PageRank.
    SparkPageRank,
}

impl WorkloadKind {
    /// The eight workloads in suite order: the paper's five (in the order
    /// its tables list them) followed by the three Spark variants.
    pub const ALL: [WorkloadKind; 8] = [
        WorkloadKind::TeraSort,
        WorkloadKind::KMeans,
        WorkloadKind::PageRank,
        WorkloadKind::AlexNet,
        WorkloadKind::InceptionV3,
        WorkloadKind::SparkTeraSort,
        WorkloadKind::SparkKMeans,
        WorkloadKind::SparkPageRank,
    ];

    /// The five workloads of the paper's own evaluation (Tables VI/VII,
    /// Figs. 4/9/10 report numbers for exactly these).
    pub const PAPER_FIVE: [WorkloadKind; 5] = [
        WorkloadKind::TeraSort,
        WorkloadKind::KMeans,
        WorkloadKind::PageRank,
        WorkloadKind::AlexNet,
        WorkloadKind::InceptionV3,
    ];

    /// Name of the original workload (with its software stack).
    pub fn real_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "Hadoop TeraSort",
            WorkloadKind::KMeans => "Hadoop K-means",
            WorkloadKind::PageRank => "Hadoop PageRank",
            WorkloadKind::AlexNet => "TensorFlow AlexNet",
            WorkloadKind::InceptionV3 => "TensorFlow Inception-V3",
            WorkloadKind::SparkTeraSort => "Spark TeraSort",
            WorkloadKind::SparkKMeans => "Spark K-means",
            WorkloadKind::SparkPageRank => "Spark PageRank",
        }
    }

    /// Name of the corresponding proxy benchmark.
    pub fn proxy_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "Proxy TeraSort",
            WorkloadKind::KMeans => "Proxy K-means",
            WorkloadKind::PageRank => "Proxy PageRank",
            WorkloadKind::AlexNet => "Proxy AlexNet",
            WorkloadKind::InceptionV3 => "Proxy Inception-V3",
            WorkloadKind::SparkTeraSort => "Proxy Spark TeraSort",
            WorkloadKind::SparkKMeans => "Proxy Spark K-means",
            WorkloadKind::SparkPageRank => "Proxy Spark PageRank",
        }
    }

    /// Short label used in table rows.
    pub fn short_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "TeraSort",
            WorkloadKind::KMeans => "K-means",
            WorkloadKind::PageRank => "PageRank",
            WorkloadKind::AlexNet => "AlexNet",
            WorkloadKind::InceptionV3 => "Inception-V3",
            WorkloadKind::SparkTeraSort => "Spark-TeraSort",
            WorkloadKind::SparkKMeans => "Spark-K-means",
            WorkloadKind::SparkPageRank => "Spark-PageRank",
        }
    }

    /// The software stack the original workload runs on.
    pub fn framework(&self) -> Framework {
        match self {
            WorkloadKind::TeraSort | WorkloadKind::KMeans | WorkloadKind::PageRank => {
                Framework::Hadoop
            }
            WorkloadKind::AlexNet | WorkloadKind::InceptionV3 => Framework::TensorFlow,
            WorkloadKind::SparkTeraSort
            | WorkloadKind::SparkKMeans
            | WorkloadKind::SparkPageRank => Framework::Spark,
        }
    }

    /// Returns true for the TensorFlow (AI) workloads.
    pub fn is_ai(&self) -> bool {
        self.framework() == Framework::TensorFlow
    }

    /// The same motif DAG on the other big-data stack: Hadoop TeraSort ↔
    /// Spark TeraSort and so on.  `None` for the AI workloads, which have
    /// no Hadoop/Spark twin.
    pub fn stack_twin(&self) -> Option<WorkloadKind> {
        match self {
            WorkloadKind::TeraSort => Some(WorkloadKind::SparkTeraSort),
            WorkloadKind::KMeans => Some(WorkloadKind::SparkKMeans),
            WorkloadKind::PageRank => Some(WorkloadKind::SparkPageRank),
            WorkloadKind::SparkTeraSort => Some(WorkloadKind::TeraSort),
            WorkloadKind::SparkKMeans => Some(WorkloadKind::KMeans),
            WorkloadKind::SparkPageRank => Some(WorkloadKind::PageRank),
            WorkloadKind::AlexNet | WorkloadKind::InceptionV3 => None,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

impl std::str::FromStr for WorkloadKind {
    type Err = String;

    /// Parses a workload name as scenario files spell them.  Matching is
    /// case-insensitive and ignores spaces, hyphens and underscores, so
    /// the short names (`"TeraSort"`, `"Spark-K-means"`), the full names
    /// (`"Hadoop TeraSort"`, `"TensorFlow Inception-V3"`) and looser
    /// spellings (`"spark_pagerank"`) all resolve.  Round-trips with
    /// [`WorkloadKind::short_name`] / `Display` and
    /// [`WorkloadKind::real_name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| !matches!(c, ' ' | '-' | '_'))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        for kind in WorkloadKind::ALL {
            let matches = |name: &str| {
                name.chars()
                    .filter(|c| !matches!(c, ' ' | '-' | '_'))
                    .map(|c| c.to_ascii_lowercase())
                    .eq(normalized.chars())
            };
            if matches(kind.short_name()) || matches(kind.real_name()) {
                return Ok(kind);
            }
        }
        Err(format!(
            "unknown workload `{s}` (expected one of: {})",
            WorkloadKind::ALL.map(|k| k.short_name()).join(", ")
        ))
    }
}

/// A model of one original big-data or AI workload.
///
/// Implementations compose motif cost models with software-stack overhead
/// into a per-node [`OpProfile`]; [`Workload::measure`] runs that profile
/// through the shared performance-model instrument for a given cluster.
pub trait Workload: std::fmt::Debug + Send + Sync {
    /// Which of the eight modelled workloads this is.
    fn kind(&self) -> WorkloadKind;

    /// The workload pattern as characterised in Table III
    /// (e.g. "I/O intensive").
    fn pattern(&self) -> &'static str;

    /// Descriptor of the workload's input data set.
    fn input_descriptor(&self) -> DataDescriptor;

    /// The motif-class decomposition with execution-ratio weights
    /// (Table III / the paper's hotspot analysis), used as the initial
    /// proxy weights.
    fn motif_composition(&self) -> Vec<(MotifClass, f64)>;

    /// The concrete motif implementations involved (the right-most column
    /// of Table III).
    fn involved_motifs(&self) -> Vec<MotifKind>;

    /// The fork/join DAG topology the proxy's motif edges should follow,
    /// mirroring the framework's dataflow structure (TensorFlow parallel
    /// towers, Spark wide dependencies, MapReduce map/shuffle/reduce
    /// phases).  Must place exactly the motifs of
    /// [`Workload::involved_motifs`], each on one edge; the default is a
    /// straight chain in that order.
    fn dag_plan(&self) -> DagPlan {
        DagPlan::chain(&self.involved_motifs())
    }

    /// The per-node operation profile of running this workload on
    /// `cluster`.
    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile;

    /// Worker tasks per node used by this workload.
    fn tasks_per_node(&self, cluster: &ClusterConfig) -> u32 {
        cluster.tasks_per_node
    }

    /// Full name of the original workload.
    fn name(&self) -> &'static str {
        self.kind().real_name()
    }

    /// Measures the workload on `cluster` with the shared instrument,
    /// returning the per-slave-node metric vector (the paper averages its
    /// measurements across slave nodes; the model's nodes are identical so
    /// one node is representative).
    fn measure(&self, cluster: &ClusterConfig) -> MetricVector {
        let engine = ExecutionEngine::new(cluster.node.arch);
        engine.run(
            &self.per_node_profile(cluster),
            self.tasks_per_node(cluster),
        )
    }
}

/// The eight workloads with their Section III-style configurations.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    WorkloadKind::ALL
        .iter()
        .map(|&kind| workload_by_kind(kind))
        .collect()
}

/// Looks up a workload's Section III-style configuration by kind.
pub fn workload_by_kind(kind: WorkloadKind) -> Box<dyn Workload> {
    match kind {
        WorkloadKind::TeraSort => Box::new(TeraSort::paper_configuration()),
        WorkloadKind::KMeans => Box::new(KMeans::paper_configuration()),
        WorkloadKind::PageRank => Box::new(PageRank::paper_configuration()),
        WorkloadKind::AlexNet => Box::new(AlexNet::paper_configuration()),
        WorkloadKind::InceptionV3 => Box::new(InceptionV3::paper_configuration()),
        WorkloadKind::SparkTeraSort => Box::new(SparkTeraSort::reference_configuration()),
        WorkloadKind::SparkKMeans => Box::new(SparkKMeans::reference_configuration()),
        WorkloadKind::SparkPageRank => Box::new(SparkPageRank::reference_configuration()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_eight_workloads() {
        let workloads = all_workloads();
        assert_eq!(workloads.len(), 8);
        let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind()).collect();
        assert_eq!(kinds, WorkloadKind::ALL.to_vec());
    }

    #[test]
    fn compositions_are_normalised_and_non_empty() {
        for w in all_workloads() {
            let comp = w.motif_composition();
            assert!(!comp.is_empty(), "{} has no composition", w.name());
            let total: f64 = comp.iter().map(|(_, weight)| weight).sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "{} weights sum to {total}",
                w.name()
            );
            assert!(!w.involved_motifs().is_empty());
        }
    }

    #[test]
    fn ai_workloads_use_ai_motifs_and_big_data_ones_do_not() {
        for w in all_workloads() {
            let any_ai = w.involved_motifs().iter().any(|m| m.is_ai());
            assert_eq!(any_ai, w.kind().is_ai(), "{}", w.name());
        }
    }

    #[test]
    fn workload_names_are_consistent() {
        assert_eq!(WorkloadKind::TeraSort.real_name(), "Hadoop TeraSort");
        assert_eq!(WorkloadKind::TeraSort.proxy_name(), "Proxy TeraSort");
        assert_eq!(WorkloadKind::SparkTeraSort.real_name(), "Spark TeraSort");
        assert_eq!(
            WorkloadKind::SparkKMeans.proxy_name(),
            "Proxy Spark K-means"
        );
        assert_eq!(WorkloadKind::InceptionV3.to_string(), "Inception-V3");
        assert!(WorkloadKind::AlexNet.is_ai());
        assert!(!WorkloadKind::PageRank.is_ai());
        assert!(!WorkloadKind::SparkPageRank.is_ai());
    }

    #[test]
    fn frameworks_partition_the_registry() {
        assert_eq!(WorkloadKind::TeraSort.framework(), Framework::Hadoop);
        assert_eq!(WorkloadKind::SparkTeraSort.framework(), Framework::Spark);
        assert_eq!(WorkloadKind::AlexNet.framework(), Framework::TensorFlow);
        let spark_count = WorkloadKind::ALL
            .iter()
            .filter(|k| k.framework() == Framework::Spark)
            .count();
        assert_eq!(spark_count, 3);
        assert_eq!(Framework::Spark.to_string(), "Spark");
    }

    #[test]
    fn stack_twins_are_symmetric_and_share_motifs() {
        for kind in WorkloadKind::ALL {
            match kind.stack_twin() {
                None => assert!(kind.is_ai()),
                Some(twin) => {
                    assert_eq!(twin.stack_twin(), Some(kind));
                    assert_ne!(twin.framework(), kind.framework());
                    let ours = workload_by_kind(kind).involved_motifs();
                    let theirs = workload_by_kind(twin).involved_motifs();
                    assert_eq!(ours, theirs, "{kind} vs {twin} motif DAGs differ");
                }
            }
        }
    }

    #[test]
    fn workload_kind_from_str_round_trips_every_rendering() {
        for kind in WorkloadKind::ALL {
            assert_eq!(kind.to_string().parse::<WorkloadKind>(), Ok(kind));
            assert_eq!(kind.short_name().parse::<WorkloadKind>(), Ok(kind));
            assert_eq!(kind.real_name().parse::<WorkloadKind>(), Ok(kind));
            assert_eq!(
                kind.to_string()
                    .to_ascii_lowercase()
                    .parse::<WorkloadKind>(),
                Ok(kind)
            );
        }
        assert_eq!("spark_pagerank".parse(), Ok(WorkloadKind::SparkPageRank));
        assert_eq!("inception v3".parse(), Ok(WorkloadKind::InceptionV3));
        assert!("NotABenchmark".parse::<WorkloadKind>().is_err());
        assert!("".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn framework_from_str_round_trips() {
        for fw in [Framework::Hadoop, Framework::Spark, Framework::TensorFlow] {
            assert_eq!(fw.to_string().parse::<Framework>(), Ok(fw));
            assert_eq!(fw.name().to_ascii_lowercase().parse::<Framework>(), Ok(fw));
        }
        assert!("Flink".parse::<Framework>().is_err());
    }

    #[test]
    fn paper_five_is_a_prefix_of_all() {
        assert_eq!(&WorkloadKind::ALL[..5], &WorkloadKind::PAPER_FIVE[..]);
    }

    #[test]
    fn every_dag_plan_places_exactly_the_involved_motifs() {
        for w in all_workloads() {
            let plan = w.dag_plan();
            assert!(
                plan.covers_exactly(&w.involved_motifs()),
                "{}: plan motifs {:?} vs involved {:?}",
                w.name(),
                plan.motifs(),
                w.involved_motifs()
            );
        }
    }

    #[test]
    fn workload_dags_genuinely_fork_and_join() {
        // The acceptance bar is ≥ 5 of 8 branching; all eight currently
        // declare fork/join structure, and the TensorFlow + Spark five are
        // pinned individually (parallel towers / wide dependencies).
        let branching = all_workloads()
            .iter()
            .filter(|w| w.dag_plan().is_branching())
            .count();
        assert!(branching >= 5, "only {branching} of 8 workload DAGs branch");
        for kind in [
            WorkloadKind::AlexNet,
            WorkloadKind::InceptionV3,
            WorkloadKind::SparkTeraSort,
            WorkloadKind::SparkKMeans,
            WorkloadKind::SparkPageRank,
        ] {
            let plan = workload_by_kind(kind).dag_plan();
            assert!(plan.is_branching(), "{kind} DAG must fork or join");
        }
        // Joins specifically (≥ 2 incoming) exist in the suite too.
        assert!(all_workloads()
            .iter()
            .any(|w| w.dag_plan().max_in_degree() >= 2));
    }

    #[test]
    fn lookup_by_kind_round_trips() {
        for kind in WorkloadKind::ALL {
            assert_eq!(workload_by_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn every_workload_measures_to_finite_metrics() {
        let cluster = ClusterConfig::five_node_westmere();
        for w in all_workloads() {
            let m = w.measure(&cluster);
            assert!(m.is_finite(), "{} produced non-finite metrics", w.name());
            assert!(
                m.runtime_secs > 1.0,
                "{} runtime {}",
                w.name(),
                m.runtime_secs
            );
        }
    }
}
