//! The [`Workload`] trait and the registry of the five paper workloads.

use dmpb_datagen::DataDescriptor;
use dmpb_metrics::MetricVector;
use dmpb_motifs::{MotifClass, MotifKind};
use dmpb_perfmodel::profile::OpProfile;
use dmpb_perfmodel::ExecutionEngine;

use crate::cluster::ClusterConfig;
use crate::hadoop::{KMeans, PageRank, TeraSort};
use crate::tensorflow::{AlexNet, InceptionV3};

/// Identity of one of the five evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// Hadoop TeraSort.
    TeraSort,
    /// Hadoop K-means.
    KMeans,
    /// Hadoop PageRank.
    PageRank,
    /// TensorFlow AlexNet.
    AlexNet,
    /// TensorFlow Inception-V3.
    InceptionV3,
}

impl WorkloadKind {
    /// The five workloads in the order the paper's tables list them.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::TeraSort,
        WorkloadKind::KMeans,
        WorkloadKind::PageRank,
        WorkloadKind::AlexNet,
        WorkloadKind::InceptionV3,
    ];

    /// Name of the original workload (with its software stack).
    pub fn real_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "Hadoop TeraSort",
            WorkloadKind::KMeans => "Hadoop K-means",
            WorkloadKind::PageRank => "Hadoop PageRank",
            WorkloadKind::AlexNet => "TensorFlow AlexNet",
            WorkloadKind::InceptionV3 => "TensorFlow Inception-V3",
        }
    }

    /// Name of the corresponding proxy benchmark.
    pub fn proxy_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "Proxy TeraSort",
            WorkloadKind::KMeans => "Proxy K-means",
            WorkloadKind::PageRank => "Proxy PageRank",
            WorkloadKind::AlexNet => "Proxy AlexNet",
            WorkloadKind::InceptionV3 => "Proxy Inception-V3",
        }
    }

    /// Short label used in table rows.
    pub fn short_name(&self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "TeraSort",
            WorkloadKind::KMeans => "K-means",
            WorkloadKind::PageRank => "PageRank",
            WorkloadKind::AlexNet => "AlexNet",
            WorkloadKind::InceptionV3 => "Inception-V3",
        }
    }

    /// Returns true for the TensorFlow (AI) workloads.
    pub fn is_ai(&self) -> bool {
        matches!(self, WorkloadKind::AlexNet | WorkloadKind::InceptionV3)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A model of one original big-data or AI workload.
///
/// Implementations compose motif cost models with software-stack overhead
/// into a per-node [`OpProfile`]; [`Workload::measure`] runs that profile
/// through the shared performance-model instrument for a given cluster.
pub trait Workload: std::fmt::Debug + Send + Sync {
    /// Which of the five paper workloads this is.
    fn kind(&self) -> WorkloadKind;

    /// The workload pattern as characterised in Table III
    /// (e.g. "I/O intensive").
    fn pattern(&self) -> &'static str;

    /// Descriptor of the workload's input data set.
    fn input_descriptor(&self) -> DataDescriptor;

    /// The motif-class decomposition with execution-ratio weights
    /// (Table III / the paper's hotspot analysis), used as the initial
    /// proxy weights.
    fn motif_composition(&self) -> Vec<(MotifClass, f64)>;

    /// The concrete motif implementations involved (the right-most column
    /// of Table III).
    fn involved_motifs(&self) -> Vec<MotifKind>;

    /// The per-node operation profile of running this workload on
    /// `cluster`.
    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile;

    /// Worker tasks per node used by this workload.
    fn tasks_per_node(&self, cluster: &ClusterConfig) -> u32 {
        cluster.tasks_per_node
    }

    /// Full name of the original workload.
    fn name(&self) -> &'static str {
        self.kind().real_name()
    }

    /// Measures the workload on `cluster` with the shared instrument,
    /// returning the per-slave-node metric vector (the paper averages its
    /// measurements across slave nodes; the model's nodes are identical so
    /// one node is representative).
    fn measure(&self, cluster: &ClusterConfig) -> MetricVector {
        let engine = ExecutionEngine::new(cluster.node.arch);
        engine.run(&self.per_node_profile(cluster), self.tasks_per_node(cluster))
    }
}

/// The five workloads with their Section III configurations.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(TeraSort::paper_configuration()),
        Box::new(KMeans::paper_configuration()),
        Box::new(PageRank::paper_configuration()),
        Box::new(AlexNet::paper_configuration()),
        Box::new(InceptionV3::paper_configuration()),
    ]
}

/// Looks up a workload's Section III configuration by kind.
pub fn workload_by_kind(kind: WorkloadKind) -> Box<dyn Workload> {
    match kind {
        WorkloadKind::TeraSort => Box::new(TeraSort::paper_configuration()),
        WorkloadKind::KMeans => Box::new(KMeans::paper_configuration()),
        WorkloadKind::PageRank => Box::new(PageRank::paper_configuration()),
        WorkloadKind::AlexNet => Box::new(AlexNet::paper_configuration()),
        WorkloadKind::InceptionV3 => Box::new(InceptionV3::paper_configuration()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_five_workloads() {
        let workloads = all_workloads();
        assert_eq!(workloads.len(), 5);
        let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind()).collect();
        assert_eq!(kinds, WorkloadKind::ALL.to_vec());
    }

    #[test]
    fn compositions_are_normalised_and_non_empty() {
        for w in all_workloads() {
            let comp = w.motif_composition();
            assert!(!comp.is_empty(), "{} has no composition", w.name());
            let total: f64 = comp.iter().map(|(_, weight)| weight).sum();
            assert!((total - 1.0).abs() < 1e-6, "{} weights sum to {total}", w.name());
            assert!(!w.involved_motifs().is_empty());
        }
    }

    #[test]
    fn ai_workloads_use_ai_motifs_and_hadoop_ones_do_not() {
        for w in all_workloads() {
            let any_ai = w.involved_motifs().iter().any(|m| m.is_ai());
            assert_eq!(any_ai, w.kind().is_ai(), "{}", w.name());
        }
    }

    #[test]
    fn workload_names_are_consistent() {
        assert_eq!(WorkloadKind::TeraSort.real_name(), "Hadoop TeraSort");
        assert_eq!(WorkloadKind::TeraSort.proxy_name(), "Proxy TeraSort");
        assert_eq!(WorkloadKind::InceptionV3.to_string(), "Inception-V3");
        assert!(WorkloadKind::AlexNet.is_ai());
        assert!(!WorkloadKind::PageRank.is_ai());
    }

    #[test]
    fn lookup_by_kind_round_trips() {
        for kind in WorkloadKind::ALL {
            assert_eq!(workload_by_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn every_workload_measures_to_finite_metrics() {
        let cluster = ClusterConfig::five_node_westmere();
        for w in all_workloads() {
            let m = w.measure(&cluster);
            assert!(m.is_finite(), "{} produced non-finite metrics", w.name());
            assert!(m.runtime_secs > 1.0, "{} runtime {}", w.name(), m.runtime_secs);
        }
    }
}
