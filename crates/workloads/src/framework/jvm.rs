//! JVM overhead model: object churn, garbage collection and the large code
//! footprint of the managed runtime.
//!
//! The model is intentionally coarse: for every byte of user data a Hadoop
//! task processes, the JVM executes a fixed number of additional
//! instructions (deserialisation into objects, boxing, writable copying,
//! GC marking and compaction).  The constants are calibrated so that the
//! composed workload models land in the same runtime range the paper
//! reports for its 100 GB inputs on the five-node cluster.

use dmpb_perfmodel::access::AccessPattern;
use dmpb_perfmodel::profile::{BranchBehavior, InstructionCounts, MemorySegment, OpProfile};

/// Instructions the managed runtime executes per byte of user data moved
/// through a Hadoop task pipeline (deserialisation, object creation,
/// comparisons through comparators, GC work).
pub const JVM_INSTRUCTIONS_PER_BYTE: f64 = 55.0;

/// Code footprint of the JVM + Hadoop runtime (far beyond any L1I).
pub const JVM_CODE_FOOTPRINT_BYTES: u64 = 6 * 1024 * 1024;

/// Fraction of JVM overhead instructions attributable to garbage
/// collection (used by tests and reports; GC work is folded into the same
/// profile).
pub const GC_FRACTION: f64 = 0.2;

/// Builds the JVM overhead profile for `processed_bytes` of user data with
/// the given live-heap working set.
pub fn jvm_overhead_profile(processed_bytes: u64, heap_bytes: u64) -> OpProfile {
    let instructions = processed_bytes as f64 * JVM_INSTRUCTIONS_PER_BYTE;
    let mut profile = OpProfile::new("jvm-overhead");
    profile.instructions = InstructionCounts {
        integer: (instructions * 0.40) as u64,
        floating_point: (instructions * 0.01) as u64,
        load: (instructions * 0.27) as u64,
        store: (instructions * 0.12) as u64,
        branch: (instructions * 0.20) as u64,
    };
    profile.memory_segments = vec![
        // Most accesses hit hot young-generation objects and task-local
        // buffers; the rest walk colder object graphs (GC marking, spill
        // index lookups) over a slice of the live heap.
        MemorySegment::new(
            AccessPattern::Sequential,
            (processed_bytes / 8).max(1 << 20),
            0.62,
        ),
        MemorySegment::new(AccessPattern::Random, 2 << 20, 0.30),
        MemorySegment::new(
            AccessPattern::PointerChase,
            (heap_bytes / 128).max(48 << 20),
            0.08,
        ),
    ];
    profile.branch = BranchBehavior::new(0.55, 0.88);
    profile.code_footprint_bytes = JVM_CODE_FOOTPRINT_BYTES;
    // MapReduce barriers, single-threaded merges and task scheduling limit
    // how much of the stack work parallelises across the node's cores.
    profile.parallel_fraction = 0.72;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_with_processed_bytes() {
        let small = jvm_overhead_profile(1 << 20, 1 << 30);
        let large = jvm_overhead_profile(1 << 30, 1 << 30);
        let ratio = large.total_instructions() as f64 / small.total_instructions() as f64;
        assert!((900.0..=1100.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overhead_is_integer_and_memory_heavy_not_fp() {
        let p = jvm_overhead_profile(1 << 30, 1 << 30);
        let mix = p.instructions.mix();
        assert!(mix.floating_point < 0.05);
        assert!(mix.integer > 0.3);
        assert!(mix.data_movement() > 0.3);
    }

    #[test]
    fn overhead_has_a_huge_code_footprint_and_pointer_chasing() {
        let p = jvm_overhead_profile(1 << 30, 1 << 30);
        assert!(p.code_footprint_bytes > 1 << 20);
        assert!(p
            .memory_segments
            .iter()
            .any(|s| matches!(s.pattern, AccessPattern::PointerChase)));
    }
}
