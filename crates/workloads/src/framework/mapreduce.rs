//! MapReduce / HDFS execution model.
//!
//! A Hadoop job over `input` on a cluster runs, per slave node:
//!
//! 1. **Map phase** — read the node's share of the input from HDFS, run the
//!    map-side motifs, spill sorted map output to local disk;
//! 2. **Shuffle** — every reducer fetches its partition (crossing the
//!    1 GbE network and the local disks);
//! 3. **Reduce phase** — merge the fetched runs, run the reduce-side
//!    motifs, write the output to HDFS with the configured replication.
//!
//! The model composes the user-side motif profiles (supplied by the
//! workload) with the JVM overhead model and the disk traffic each phase
//! causes, and yields one per-node [`OpProfile`].  Shuffle traffic is
//! accounted as disk traffic — Hadoop materialises shuffle data on disk on
//! both the map and reduce side — which also stands in for the (slower)
//! 1 GbE network the paper's cluster uses.

use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::jvm;

/// Description of one Hadoop job's data movement, independent of which
/// motifs run in its map and reduce functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobShape {
    /// Total job input in bytes (across the cluster).
    pub input_bytes: u64,
    /// Ratio of map-output to input volume (1.0 for TeraSort, small for
    /// aggregating jobs like K-means).
    pub shuffle_ratio: f64,
    /// Ratio of final output to input volume.
    pub output_ratio: f64,
    /// HDFS replication factor for the job output.
    pub output_replication: u32,
    /// Live JVM heap per node the job keeps resident (spill buffers,
    /// in-memory segments), in bytes.
    pub heap_bytes: u64,
    /// Fraction of the piped bytes that incur full per-byte JVM overhead.
    /// TeraSort moves every record byte through writables and comparators
    /// (1.0); aggregating jobs like K-means deserialise each vector once
    /// but spend the rest of their time in numeric code (< 1.0).
    pub pipeline_factor: f64,
}

impl JobShape {
    /// Per-node share of the input.
    pub fn input_bytes_per_node(&self, cluster: &ClusterConfig) -> u64 {
        self.input_bytes / u64::from(cluster.slave_nodes())
    }

    /// Per-node disk traffic `(read, write)` caused by the job's data
    /// movement (input read, spill, shuffle materialisation, output
    /// replication), excluding whatever the motifs themselves request.
    pub fn disk_traffic_per_node(&self, cluster: &ClusterConfig) -> (u64, u64) {
        let input = self.input_bytes_per_node(cluster) as f64;
        let shuffle = input * self.shuffle_ratio;
        let output = input * self.output_ratio;
        // Read: job input plus re-reading the spilled map output on the
        // reduce side (a fraction stays in the page cache).
        let read = input + shuffle * 0.5;
        // Write: map-side spill plus the replicated job output.
        let write = shuffle * 0.5 + output * f64::from(self.output_replication.max(1));
        (read as u64, write as u64)
    }
}

/// Composes a per-node profile for a Hadoop job.
///
/// `user_profiles` are the motif profiles of the map and reduce functions,
/// already scaled to the *per-node* share of the data.  The function merges
/// them, adds the JVM / framework overhead proportional to the bytes moved
/// through the task pipeline, and adds the job's framework-level disk
/// traffic.
///
/// # Panics
///
/// Panics if `user_profiles` is empty.
pub fn per_node_job_profile(
    shape: &JobShape,
    cluster: &ClusterConfig,
    user_profiles: Vec<OpProfile>,
    name: &str,
) -> OpProfile {
    assert!(
        !user_profiles.is_empty(),
        "a job needs at least one user profile"
    );
    let user = OpProfile::merge_all(user_profiles).expect("non-empty");

    let input_per_node = shape.input_bytes_per_node(cluster);
    // Bytes moved through the task pipeline: map input plus shuffled bytes
    // on the reduce side, weighted by how much of that movement really goes
    // through the heavy writable/comparator path.
    let piped_bytes = ((input_per_node as f64 * (1.0 + shape.shuffle_ratio))
        * shape.pipeline_factor.max(0.0)) as u64;
    let overhead = jvm::jvm_overhead_profile(piped_bytes, shape.heap_bytes);

    let mut profile = user.merge(&overhead);
    profile.name = name.to_string();

    let (fw_read, fw_write) = shape.disk_traffic_per_node(cluster);
    // The motif cost models already account for reading their own input
    // once; replace motif-level disk accounting with the job-level model to
    // avoid double counting.
    profile.disk_read_bytes = fw_read;
    profile.disk_write_bytes = fw_write;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::descriptor::{DataClass, DataDescriptor, Distribution};
    use dmpb_motifs::{MotifConfig, MotifKind};

    fn shape() -> JobShape {
        JobShape {
            input_bytes: 100 << 30,
            shuffle_ratio: 1.0,
            output_ratio: 1.0,
            output_replication: 2,
            heap_bytes: 8 << 30,
            pipeline_factor: 1.0,
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::five_node_westmere()
    }

    #[test]
    fn input_is_split_across_slave_nodes() {
        assert_eq!(shape().input_bytes_per_node(&cluster()), 25 << 30);
    }

    #[test]
    fn disk_traffic_includes_spill_and_replication() {
        let (read, write) = shape().disk_traffic_per_node(&cluster());
        assert!(read > 25 << 30, "read {read}");
        assert!(write > 25 << 30, "write {write}");
        // An aggregating job with tiny shuffle writes much less.
        let agg = JobShape {
            shuffle_ratio: 0.01,
            output_ratio: 0.01,
            ..shape()
        };
        let (_, agg_write) = agg.disk_traffic_per_node(&cluster());
        assert!(agg_write < write / 10);
    }

    #[test]
    fn job_profile_contains_user_and_framework_work() {
        let data = DataDescriptor::new(DataClass::Text, 25 << 30, 100, 0.0, Distribution::Uniform);
        let sort = MotifKind::QuickSort.cost_profile(&data, &MotifConfig::big_data_default());
        let user_instructions = sort.total_instructions();
        let job = per_node_job_profile(&shape(), &cluster(), vec![sort], "terasort");
        assert!(
            job.total_instructions() > user_instructions,
            "framework overhead missing"
        );
        assert_eq!(job.name, "terasort");
        assert!(job.code_footprint_bytes >= jvm::JVM_CODE_FOOTPRINT_BYTES);
        assert!(job.disk_read_bytes > 0 && job.disk_write_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "at least one user profile")]
    fn empty_user_profiles_are_rejected() {
        let _ = per_node_job_profile(&shape(), &cluster(), Vec::new(), "x");
    }
}
