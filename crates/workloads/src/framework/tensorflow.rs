//! TensorFlow execution model: a layer graph executed for a number of
//! training steps under a parameter-server deployment.
//!
//! The paper runs AlexNet and Inception-V3 with one parameter-server node
//! and four worker nodes; each worker executes its share of the training
//! steps.  The model expands each network layer into the corresponding AI
//! data-motif cost profile (convolution, pooling, fully connected,
//! normalisation, activation…), multiplies the forward cost to account for
//! the backward pass, and adds the dataflow-runtime overhead (kernel
//! dispatch, tensor bookkeeping) and the per-step parameter-server
//! exchange.

use dmpb_datagen::descriptor::{DataClass, DataDescriptor, Distribution};
use dmpb_perfmodel::access::AccessPattern;
use dmpb_perfmodel::profile::{BranchBehavior, InstructionCounts, MemorySegment, OpProfile};

use dmpb_motifs::{MotifConfig, MotifKind};

use crate::cluster::ClusterConfig;

/// One layer of a modelled network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Which AI motif implements the layer.
    pub motif: MotifKind,
    /// Input feature-map height.
    pub height: u32,
    /// Input feature-map width.
    pub width: u32,
    /// Input channels.
    pub channels: u32,
    /// Filter size (convolution / pooling window); 1 otherwise.
    pub filter: u32,
}

impl LayerSpec {
    /// Convenience constructor.
    pub fn new(motif: MotifKind, height: u32, width: u32, channels: u32, filter: u32) -> Self {
        Self {
            motif,
            height,
            width,
            channels,
            filter,
        }
    }
}

/// A network: a name plus an ordered list of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Reporting name, e.g. `"AlexNet"`.
    pub name: &'static str,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Per-image input bytes on disk (decoded input is modelled by the
    /// layer geometry).
    pub input_image_bytes: u64,
}

impl NetworkSpec {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of convolution layers (a sanity metric used in tests).
    pub fn num_convolutions(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.motif == MotifKind::Convolution)
            .count()
    }
}

/// Training-run configuration (steps, batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingConfig {
    /// Total training steps across the cluster.
    pub total_steps: u64,
    /// Batch size per step.
    pub batch_size: u32,
}

/// Ratio of backward-pass cost to forward-pass cost.
const BACKWARD_TO_FORWARD: f64 = 1.2;
/// Dataflow-runtime overhead instructions per layer invocation per batch.
const RUNTIME_DISPATCH_INSTRUCTIONS: f64 = 2.0e6;
/// Bytes of parameters exchanged with the parameter server per step,
/// expressed as a fraction of the per-step compute bytes (coarse model).
const PS_EXCHANGE_BYTES_PER_STEP: u64 = 100 << 20;

/// Builds the per-worker-node profile of training `network` for
/// `training.total_steps` steps on `cluster`.
pub fn per_node_training_profile(
    network: &NetworkSpec,
    training: TrainingConfig,
    cluster: &ClusterConfig,
) -> OpProfile {
    let workers = u64::from(cluster.slave_nodes());
    let steps_per_worker = (training.total_steps / workers).max(1);
    let batch = u64::from(training.batch_size);

    // --- Per-step forward + backward cost over all layers ----------------
    let mut per_step: Option<OpProfile> = None;
    for layer in &network.layers {
        let config = MotifConfig::ai_default()
            .with_batch_size(training.batch_size)
            .with_geometry(layer.height, layer.width, layer.channels);
        let config = MotifConfig {
            filter_size: layer.filter,
            ..config
        };
        // One "element" of the descriptor is one image in the batch.
        let per_image_bytes =
            u64::from(layer.height) * u64::from(layer.width) * u64::from(layer.channels) * 4;
        let data = DataDescriptor::new(
            DataClass::Image,
            per_image_bytes * batch,
            per_image_bytes.max(1),
            0.0,
            Distribution::Uniform,
        );
        let layer_profile = layer.motif.cost_profile(&data, &config);
        per_step = Some(match per_step {
            None => layer_profile,
            Some(acc) => acc.merge(&layer_profile),
        });
    }
    let forward = per_step.expect("network has at least one layer");
    // Backward pass: same motifs, heavier.
    let per_step = forward.scaled(1.0 + BACKWARD_TO_FORWARD);

    // --- Scale to the worker's share of the steps ------------------------
    let mut profile = per_step.scaled(steps_per_worker as f64);
    profile.name = format!("tensorflow-{}", network.name.to_lowercase());

    // --- Dataflow runtime overhead ---------------------------------------
    let dispatches = network.layers.len() as f64 * steps_per_worker as f64;
    let runtime_instr = dispatches * RUNTIME_DISPATCH_INSTRUCTIONS;
    let mut runtime = OpProfile::new("tf-runtime");
    runtime.instructions = InstructionCounts {
        integer: (runtime_instr * 0.45) as u64,
        floating_point: (runtime_instr * 0.02) as u64,
        load: (runtime_instr * 0.25) as u64,
        store: (runtime_instr * 0.10) as u64,
        branch: (runtime_instr * 0.18) as u64,
    };
    runtime.memory_segments = vec![
        MemorySegment::new(AccessPattern::PointerChase, 256 << 20, 0.5),
        MemorySegment::new(AccessPattern::Sequential, 64 << 20, 0.5),
    ];
    runtime.branch = BranchBehavior::new(0.6, 0.5);
    runtime.code_footprint_bytes = 12 * 1024 * 1024;
    runtime.parallel_fraction = 0.6;
    let mut profile = profile.merge(&runtime);
    profile.name = format!("tensorflow-{}", network.name.to_lowercase());

    // --- Input pipeline and parameter-server traffic ---------------------
    // Training data is read from local disk once per step per worker.
    profile.disk_read_bytes = steps_per_worker * batch * network.input_image_bytes;
    // Parameter exchange is network traffic; it does not touch the disk but
    // does serialise part of each step, captured in the parallel fraction.
    profile.disk_write_bytes = 0;
    let _ = PS_EXCHANGE_BYTES_PER_STEP;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_network() -> NetworkSpec {
        NetworkSpec {
            name: "Tiny",
            layers: vec![
                LayerSpec::new(MotifKind::Convolution, 32, 32, 3, 3),
                LayerSpec::new(MotifKind::Relu, 32, 32, 16, 1),
                LayerSpec::new(MotifKind::MaxPooling, 32, 32, 16, 2),
                LayerSpec::new(MotifKind::FullyConnected, 16, 16, 16, 1),
                LayerSpec::new(MotifKind::Softmax, 1, 10, 1, 1),
            ],
            input_image_bytes: 3 * 1024,
        }
    }

    fn training() -> TrainingConfig {
        TrainingConfig {
            total_steps: 1000,
            batch_size: 64,
        }
    }

    #[test]
    fn profile_scales_with_steps() {
        let cluster = ClusterConfig::five_node_westmere();
        let short = per_node_training_profile(
            &tiny_network(),
            TrainingConfig {
                total_steps: 100,
                batch_size: 64,
            },
            &cluster,
        );
        let long = per_node_training_profile(
            &tiny_network(),
            TrainingConfig {
                total_steps: 1000,
                batch_size: 64,
            },
            &cluster,
        );
        let ratio = long.total_instructions() as f64 / short.total_instructions() as f64;
        assert!((8.0..=12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn profile_is_fp_heavy() {
        let p = per_node_training_profile(
            &tiny_network(),
            training(),
            &ClusterConfig::five_node_westmere(),
        );
        assert!(
            p.instructions.mix().floating_point > 0.25,
            "fp {}",
            p.instructions.mix().floating_point
        );
    }

    #[test]
    fn disk_traffic_is_modest() {
        let p = per_node_training_profile(
            &tiny_network(),
            training(),
            &ClusterConfig::five_node_westmere(),
        );
        // Input pipeline only: steps/worker * batch * image bytes.
        assert_eq!(p.disk_write_bytes, 0);
        assert_eq!(p.disk_read_bytes, 250 * 64 * 3 * 1024);
    }

    #[test]
    fn fewer_workers_means_more_steps_per_node() {
        let five = per_node_training_profile(
            &tiny_network(),
            training(),
            &ClusterConfig::five_node_westmere(),
        );
        let three = per_node_training_profile(
            &tiny_network(),
            training(),
            &ClusterConfig::three_node_westmere_64gb(),
        );
        assert!(three.total_instructions() > five.total_instructions());
    }

    #[test]
    fn network_spec_accessors() {
        let n = tiny_network();
        assert_eq!(n.num_layers(), 5);
        assert_eq!(n.num_convolutions(), 1);
    }
}
