//! Software-stack overhead models.
//!
//! The original workloads do not run their motifs on bare metal: Hadoop
//! jobs pay for the JVM (interpretation, object churn, garbage collection),
//! the MapReduce runtime (task scheduling, serialisation, spill/merge,
//! HDFS replication) and the shuffle; TensorFlow jobs pay for the dataflow
//! runtime and the parameter-server step loop.  These overheads are a large
//! part of why the originals behave differently from bare kernels — and
//! exactly the gap the proxy methodology has to close — so they are
//! modelled explicitly here as additional [`dmpb_perfmodel::OpProfile`]
//! components merged into each workload's profile.

pub mod jvm;
pub mod mapreduce;
pub mod tensorflow;
