//! Software-stack overhead models.
//!
//! The original workloads do not run their motifs on bare metal: Hadoop
//! jobs pay for the JVM (interpretation, object churn, garbage collection),
//! the MapReduce runtime (task scheduling, serialisation, spill/merge,
//! HDFS replication) and the shuffle; Spark applications pay for the same
//! JVM plus the DAG scheduler, block-manager caching and the sort-based
//! shuffle at wide-dependency boundaries; TensorFlow jobs pay for the
//! dataflow runtime and the parameter-server step loop.  These overheads
//! are a large part of why the originals behave differently from bare
//! kernels — and exactly the gap the proxy methodology has to close — so
//! they are modelled explicitly here as additional
//! [`dmpb_perfmodel::OpProfile`] components merged into each workload's
//! profile.  The JVM model ([`jvm`]) is shared by the Hadoop and Spark
//! stacks; what differs is how many bytes each stack moves through it.

pub mod jvm;
pub mod mapreduce;
pub mod spark;
pub mod tensorflow;
