//! Spark execution model: an RDD lineage executed as a DAG of stages.
//!
//! A Spark application over `input` on a cluster runs, per executor node:
//!
//! 1. **Input stage** — read the node's share of the input from HDFS once
//!    and deserialise it into an RDD; iterative applications persist the
//!    deserialised partitions in the block-manager cache (`MEMORY_ONLY`),
//!    so later iterations never touch the disk for their input.
//! 2. **Narrow stages** — chains of narrow-dependency transformations
//!    (`map`, `filter`, `mapPartitions`) are pipelined inside one stage:
//!    records flow operator to operator without materialisation, so no
//!    per-operator spill and no extra serde.
//! 3. **Wide stages** — a wide dependency (`sortByKey`, `reduceByKey`,
//!    `join`) ends the stage: the sort-based shuffle serialises map output
//!    to local shuffle files and the next stage fetches and deserialises
//!    them.  Only these boundaries pay the serde + disk cost that Hadoop
//!    pays on every map/reduce hop.
//! 4. **Output** — the final RDD is written back to HDFS with the
//!    configured replication.
//!
//! # Model assumptions
//!
//! * **Shared JVM cost.**  Spark executors are JVMs, so the per-byte
//!   managed-runtime overhead is the same [`jvm`] model Hadoop uses — what
//!   changes is *how many bytes* cross the serde pipeline: input
//!   deserialisation happens once (then cached), and shuffle serde is paid
//!   only at wide-dependency boundaries, scaled by
//!   [`AppShape::pipeline_factor`].
//! * **In-memory caching.**  A cached RDD is stored as deserialised Java
//!   objects on the heap.  Re-reading it is cheap on the disk but
//!   pointer-heavy on the memory system — the model adds a pointer-chase
//!   segment over the cached partitions, which is the distinctive Spark
//!   micro-architectural signature the companion data-motif paper observes
//!   (the software stack dominates behaviour).  The fraction of the input
//!   that fits the cache is [`AppShape::cached_fraction`]; the rest is
//!   recomputed/re-read every iteration.
//! * **DAG scheduling.**  The driver schedules one task per partition per
//!   stage; each launch costs closure deserialisation, shuffle bookkeeping
//!   and result serialisation on the executor
//!   ([`TASK_DISPATCH_INSTRUCTIONS`]).  Stage barriers are cheaper than
//!   MapReduce job barriers, so a larger fraction of the work parallelises
//!   across cores ([`SPARK_PARALLEL_FRACTION`] vs the JVM model's 0.72).
//! * **Shuffle traffic is disk traffic.**  As in the MapReduce model,
//!   shuffle-file writes and fetches stand in for both the local disks and
//!   the 1 GbE network of the paper's cluster.
//!
//! The entry point is [`per_node_app_profile`], the Spark analogue of
//! [`crate::framework::mapreduce::per_node_job_profile`].

use dmpb_perfmodel::access::AccessPattern;
use dmpb_perfmodel::profile::{BranchBehavior, InstructionCounts, MemorySegment, OpProfile};

use crate::cluster::ClusterConfig;
use crate::framework::jvm;

/// Instructions one task launch costs on the executor: closure
/// deserialisation, block-manager lookups, shuffle bookkeeping and result
/// serialisation back to the driver.
pub const TASK_DISPATCH_INSTRUCTIONS: f64 = 6.0e6;

/// Code footprint of the JVM + Spark runtime (Spark jars on top of the
/// managed runtime; larger than Hadoop's task footprint).
pub const SPARK_CODE_FOOTPRINT_BYTES: u64 = 9 * 1024 * 1024;

/// Fraction of an executor's work that parallelises across the node's
/// cores.  Stage barriers are cheaper than MapReduce job barriers and
/// narrow stages pipeline freely, so Spark parallelises better than the
/// 0.72 of the MapReduce/JVM model.
pub const SPARK_PARALLEL_FRACTION: f64 = 0.80;

/// Description of one Spark application's data movement, independent of
/// which motifs run inside its stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppShape {
    /// Total application input in bytes (across the cluster).
    pub input_bytes: u64,
    /// Number of iterations over the (cached) input RDD.  `1` for one-pass
    /// applications like TeraSort.
    pub iterations: u32,
    /// Fraction of the input RDD that fits in the block-manager cache;
    /// the remainder is re-read from HDFS on every iteration after the
    /// first.
    pub cached_fraction: f64,
    /// Ratio of bytes crossing a wide-dependency shuffle to input volume,
    /// per iteration (1.0 for TeraSort's `sortByKey`, small for
    /// `reduceByKey`-style aggregation).
    pub wide_shuffle_ratio: f64,
    /// Ratio of final output to input volume.
    pub output_ratio: f64,
    /// HDFS replication factor for the application output.
    pub output_replication: u32,
    /// Live executor heap per node (cached partitions, shuffle buffers),
    /// in bytes.
    pub heap_bytes: u64,
    /// Fraction of the serde-crossing bytes that incur full per-byte JVM
    /// overhead (record-at-a-time serialisation vs. batched columnar
    /// paths).
    pub pipeline_factor: f64,
}

impl AppShape {
    /// Per-node share of the input.
    pub fn input_bytes_per_node(&self, cluster: &ClusterConfig) -> u64 {
        self.input_bytes / u64::from(cluster.slave_nodes())
    }

    /// Per-node bytes crossing a wide-dependency shuffle in one iteration.
    pub fn shuffle_bytes_per_node(&self, cluster: &ClusterConfig) -> u64 {
        (self.input_bytes_per_node(cluster) as f64 * self.wide_shuffle_ratio) as u64
    }

    /// Per-node bytes re-read from HDFS per iteration after the first
    /// because they did not fit the cache.
    pub fn uncached_bytes_per_node(&self, cluster: &ClusterConfig) -> u64 {
        let spill = 1.0 - self.cached_fraction.clamp(0.0, 1.0);
        (self.input_bytes_per_node(cluster) as f64 * spill) as u64
    }

    /// Per-node disk traffic `(read, write)` of the application: the input
    /// read once (plus cache-miss re-reads on later iterations), shuffle
    /// files written and fetched at every wide boundary, and the replicated
    /// output — excluding whatever the motifs themselves request.
    pub fn disk_traffic_per_node(&self, cluster: &ClusterConfig) -> (u64, u64) {
        let input = self.input_bytes_per_node(cluster) as f64;
        let iterations = f64::from(self.iterations.max(1));
        let reread = self.uncached_bytes_per_node(cluster) as f64 * (iterations - 1.0);
        let shuffle = self.shuffle_bytes_per_node(cluster) as f64 * iterations;
        let output = input * self.output_ratio;
        // Read: the one-time input scan, cache-miss re-reads, and fetching
        // shuffle files (a fraction stays in the page cache).
        let read = input + reread + shuffle * 0.5;
        // Write: shuffle files plus the replicated application output.
        let write = shuffle * 0.5 + output * f64::from(self.output_replication.max(1));
        (read as u64, write as u64)
    }

    /// Per-node bytes that cross the JVM serde pipeline: the input is
    /// deserialised once (cached partitions stay deserialised), cache
    /// misses are re-deserialised, and every wide shuffle serialises on the
    /// map side and deserialises on the reduce side.
    pub fn serde_bytes_per_node(&self, cluster: &ClusterConfig) -> u64 {
        let input = self.input_bytes_per_node(cluster) as f64;
        let iterations = f64::from(self.iterations.max(1));
        let reread = self.uncached_bytes_per_node(cluster) as f64 * (iterations - 1.0);
        let shuffle = self.shuffle_bytes_per_node(cluster) as f64 * iterations * 2.0;
        ((input + reread + shuffle) * self.pipeline_factor.max(0.0)) as u64
    }
}

/// Builds the DAG-scheduler / task-launch overhead profile: one task per
/// partition per stage, each paying [`TASK_DISPATCH_INSTRUCTIONS`], plus
/// the block-manager's pointer-heavy walk over the cached partitions.
fn scheduler_profile(shape: &AppShape, cluster: &ClusterConfig) -> OpProfile {
    let stages_per_iteration = if shape.wide_shuffle_ratio > 0.0 {
        2.0
    } else {
        1.0
    };
    let stages = 1.0 + stages_per_iteration * f64::from(shape.iterations.max(1));
    let launches = f64::from(cluster.tasks_per_node) * stages;
    let instructions = launches * TASK_DISPATCH_INSTRUCTIONS;

    let cached_bytes =
        (shape.input_bytes_per_node(cluster) as f64 * shape.cached_fraction.clamp(0.0, 1.0)) as u64;

    let mut profile = OpProfile::new("spark-scheduler");
    profile.instructions = InstructionCounts {
        integer: (instructions * 0.42) as u64,
        floating_point: (instructions * 0.01) as u64,
        load: (instructions * 0.26) as u64,
        store: (instructions * 0.11) as u64,
        branch: (instructions * 0.20) as u64,
    };
    profile.memory_segments = vec![
        // Task descriptors, shuffle index files, block-manager maps.
        MemorySegment::new(AccessPattern::Random, 4 << 20, 0.45),
        // Cached RDD partitions are deserialised Java objects on the heap:
        // iterating them is a pointer chase over the old generation.
        MemorySegment::new(
            AccessPattern::PointerChase,
            (cached_bytes / 64).max(16 << 20),
            0.55,
        ),
    ];
    profile.branch = BranchBehavior::new(0.52, 0.86);
    profile.code_footprint_bytes = SPARK_CODE_FOOTPRINT_BYTES;
    profile.parallel_fraction = SPARK_PARALLEL_FRACTION;
    profile
}

/// Composes a per-node profile for a Spark application.
///
/// `user_profiles` are the motif profiles of the application's stages,
/// already scaled to the *per-node, all-iterations* share of the data.
/// The function merges them, adds the JVM serde overhead for the bytes
/// that really cross a serialisation boundary (input once, shuffle per
/// wide stage — not every operator hop, as Hadoop pays), adds the DAG
/// scheduler / block-manager overhead, and replaces motif-level disk
/// accounting with the application-level lineage model.
///
/// # Panics
///
/// Panics if `user_profiles` is empty.
pub fn per_node_app_profile(
    shape: &AppShape,
    cluster: &ClusterConfig,
    user_profiles: Vec<OpProfile>,
    name: &str,
) -> OpProfile {
    assert!(
        !user_profiles.is_empty(),
        "an application needs at least one user profile"
    );
    let user = OpProfile::merge_all(user_profiles).expect("non-empty");

    let serde_bytes = shape.serde_bytes_per_node(cluster);
    let jvm_overhead = jvm::jvm_overhead_profile(serde_bytes, shape.heap_bytes);
    let scheduler = scheduler_profile(shape, cluster);

    let mut profile = user.merge(&jvm_overhead).merge(&scheduler);
    profile.name = name.to_string();
    profile.code_footprint_bytes = profile.code_footprint_bytes.max(SPARK_CODE_FOOTPRINT_BYTES);
    profile.parallel_fraction = profile.parallel_fraction.max(SPARK_PARALLEL_FRACTION);

    let (fw_read, fw_write) = shape.disk_traffic_per_node(cluster);
    // The motif cost models account for reading their own input once;
    // replace motif-level disk accounting with the lineage-level model to
    // avoid double counting (same convention as the MapReduce model).
    profile.disk_read_bytes = fw_read;
    profile.disk_write_bytes = fw_write;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::mapreduce::{per_node_job_profile, JobShape};
    use dmpb_datagen::descriptor::{DataClass, DataDescriptor, Distribution};
    use dmpb_motifs::{MotifConfig, MotifKind};

    fn one_pass_shape() -> AppShape {
        AppShape {
            input_bytes: 100 << 30,
            iterations: 1,
            cached_fraction: 0.0,
            wide_shuffle_ratio: 1.0,
            output_ratio: 1.0,
            output_replication: 1,
            heap_bytes: 12 << 30,
            pipeline_factor: 1.0,
        }
    }

    fn iterative_shape() -> AppShape {
        AppShape {
            input_bytes: 100 << 30,
            iterations: 5,
            cached_fraction: 1.0,
            wide_shuffle_ratio: 0.01,
            output_ratio: 0.001,
            output_replication: 2,
            heap_bytes: 20 << 30,
            pipeline_factor: 0.3,
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::five_node_westmere()
    }

    #[test]
    fn input_is_split_across_slave_nodes() {
        assert_eq!(one_pass_shape().input_bytes_per_node(&cluster()), 25 << 30);
    }

    #[test]
    fn cached_iterations_do_not_reread_the_input() {
        let (read, _) = iterative_shape().disk_traffic_per_node(&cluster());
        // Five iterations, but the input is read from HDFS exactly once.
        let input = iterative_shape().input_bytes_per_node(&cluster());
        assert!(read < input + input / 10, "read {read} vs input {input}");

        let uncached = AppShape {
            cached_fraction: 0.0,
            ..iterative_shape()
        };
        let (uncached_read, _) = uncached.disk_traffic_per_node(&cluster());
        assert!(uncached_read > 4 * input, "uncached read {uncached_read}");
    }

    #[test]
    fn serde_is_paid_only_at_wide_boundaries() {
        // A narrow-only iterative app deserialises the input once.
        let narrow = AppShape {
            wide_shuffle_ratio: 0.0,
            ..iterative_shape()
        };
        assert_eq!(
            narrow.serde_bytes_per_node(&cluster()),
            (narrow.input_bytes_per_node(&cluster()) as f64 * narrow.pipeline_factor) as u64
        );
        // Adding a wide stage per iteration adds serde on both sides.
        let wide = AppShape {
            wide_shuffle_ratio: 0.5,
            ..iterative_shape()
        };
        assert!(
            wide.serde_bytes_per_node(&cluster()) > 2 * narrow.serde_bytes_per_node(&cluster())
        );
    }

    #[test]
    fn app_profile_contains_user_jvm_and_scheduler_work() {
        let data = DataDescriptor::new(DataClass::Text, 25 << 30, 100, 0.0, Distribution::Uniform);
        let sort = MotifKind::QuickSort.cost_profile(&data, &MotifConfig::big_data_default());
        let user_instructions = sort.total_instructions();
        let app = per_node_app_profile(&one_pass_shape(), &cluster(), vec![sort], "spark-terasort");
        assert!(
            app.total_instructions() > user_instructions,
            "framework overhead missing"
        );
        assert_eq!(app.name, "spark-terasort");
        assert!(app.code_footprint_bytes >= SPARK_CODE_FOOTPRINT_BYTES);
        assert!(app.disk_read_bytes > 0 && app.disk_write_bytes > 0);
        assert!(app
            .memory_segments
            .iter()
            .any(|s| matches!(s.pattern, AccessPattern::PointerChase)));
    }

    #[test]
    fn spark_moves_fewer_bytes_through_serde_than_hadoop_for_the_same_job() {
        // Same 100 GB sort: Hadoop pays the writable pipeline on input and
        // shuffle of every hop; Spark pipelines narrow stages and caches,
        // so the equivalent iterative aggregation touches the disk and the
        // serde path far less.
        let data =
            DataDescriptor::new(DataClass::Vector, 25 << 30, 400, 0.9, Distribution::Uniform);
        let motif =
            MotifKind::DistanceCalculation.cost_profile(&data, &MotifConfig::big_data_default());
        let hadoop_shape = JobShape {
            input_bytes: 100 << 30,
            shuffle_ratio: 0.01,
            output_ratio: 0.001,
            output_replication: 2,
            heap_bytes: 12 << 30,
            pipeline_factor: 0.3,
        };
        let hadoop = per_node_job_profile(&hadoop_shape, &cluster(), vec![motif.clone()], "h");
        let spark = per_node_app_profile(&iterative_shape(), &cluster(), vec![motif], "s");
        // One Spark iteration's framework disk traffic is far below one
        // Hadoop job's (no per-job output materialisation, cached input).
        let per_iter_read = spark.disk_read_bytes / 5;
        assert!(
            per_iter_read < hadoop.disk_read_bytes,
            "{per_iter_read} vs {}",
            hadoop.disk_read_bytes
        );
        // And one Spark iteration's serde bytes are far below one Hadoop
        // job's writable-pipeline bytes: the cached RDD is deserialised
        // once, so later iterations pay serde only on the tiny shuffle.
        let spark_serde_per_iter = iterative_shape().serde_bytes_per_node(&cluster()) / 5;
        let hadoop_piped = (hadoop_shape.input_bytes_per_node(&cluster()) as f64
            * (1.0 + hadoop_shape.shuffle_ratio)
            * hadoop_shape.pipeline_factor) as u64;
        assert!(
            spark_serde_per_iter < hadoop_piped / 2,
            "{spark_serde_per_iter} vs {hadoop_piped}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user profile")]
    fn empty_user_profiles_are_rejected() {
        let _ = per_node_app_profile(&one_pass_shape(), &cluster(), Vec::new(), "x");
    }
}
