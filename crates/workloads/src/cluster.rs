//! Cluster configurations used in the paper's evaluation.
//!
//! * Section III: five nodes (one master + four slaves), dual Xeon E5645,
//!   32 GB memory, 1 GbE.
//! * Section IV-B: three nodes (one master + two slaves), same processor,
//!   64 GB memory.
//! * Section IV-C: three nodes with Xeon E5-2620 v3 (Haswell), 64 GB.

use dmpb_perfmodel::arch::NodeConfig;

/// A Hadoop / TensorFlow evaluation cluster: one master plus
/// `total_nodes - 1` slave (worker) nodes of identical configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Reporting name of the cluster.
    pub name: &'static str,
    /// Total node count including the master / parameter server.
    pub total_nodes: u32,
    /// Per-node hardware configuration.
    pub node: NodeConfig,
    /// Worker tasks (map slots / TensorFlow intra-op threads) per node.
    pub tasks_per_node: u32,
}

impl ClusterConfig {
    /// The Section III cluster: 5 × dual Xeon E5645, 32 GB, 1 GbE.
    pub fn five_node_westmere() -> Self {
        Self {
            name: "5-node Xeon E5645 (32 GB)",
            total_nodes: 5,
            node: NodeConfig::westmere_node(),
            tasks_per_node: 12,
        }
    }

    /// The Section IV-B cluster: 3 × dual Xeon E5645, 64 GB.
    pub fn three_node_westmere_64gb() -> Self {
        Self {
            name: "3-node Xeon E5645 (64 GB)",
            total_nodes: 3,
            node: NodeConfig::westmere_node_64gb(),
            tasks_per_node: 12,
        }
    }

    /// The Section IV-C cluster: 3 × dual Xeon E5-2620 v3, 64 GB.
    pub fn three_node_haswell() -> Self {
        Self {
            name: "3-node Xeon E5-2620 v3 (64 GB)",
            total_nodes: 3,
            node: NodeConfig::haswell_node(),
            tasks_per_node: 12,
        }
    }

    /// Slugs of the named evaluation clusters, in paper order.  These are
    /// the values scenario files may put on their `clusters` axis; each
    /// resolves through [`ClusterConfig::by_name`].
    pub const NAMES: [&'static str; 3] = [
        "five-node-westmere",
        "three-node-westmere-64gb",
        "three-node-haswell",
    ];

    /// Looks up one of the paper's evaluation clusters by name.  Accepts
    /// the slugs of [`ClusterConfig::NAMES`] and the reporting names
    /// (e.g. `"5-node Xeon E5645 (32 GB)"`), case-insensitively.
    pub fn by_name(name: &str) -> Option<Self> {
        type Builder = fn() -> ClusterConfig;
        const REGISTRY: [(&str, Builder); 3] = [
            ("five-node-westmere", ClusterConfig::five_node_westmere),
            (
                "three-node-westmere-64gb",
                ClusterConfig::three_node_westmere_64gb,
            ),
            ("three-node-haswell", ClusterConfig::three_node_haswell),
        ];
        let wanted = name.trim().to_ascii_lowercase();
        REGISTRY
            .iter()
            .find(|(slug, build)| *slug == wanted || build().name.to_ascii_lowercase() == wanted)
            .map(|(_, build)| build())
    }

    /// Number of slave / worker nodes (the master does not process data).
    pub fn slave_nodes(&self) -> u32 {
        self.total_nodes.saturating_sub(1).max(1)
    }

    /// Total worker tasks across the cluster.
    pub fn total_tasks(&self) -> u32 {
        self.slave_nodes() * self.tasks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_node_cluster_has_four_slaves() {
        let c = ClusterConfig::five_node_westmere();
        assert_eq!(c.slave_nodes(), 4);
        assert_eq!(c.total_tasks(), 48);
        assert_eq!(c.node.memory_gb, 32);
    }

    #[test]
    fn reconfigured_cluster_matches_section_iv() {
        let c = ClusterConfig::three_node_westmere_64gb();
        assert_eq!(c.slave_nodes(), 2);
        assert_eq!(c.node.memory_gb, 64);
        assert_eq!(c.node.arch.name, "Xeon E5645 (Westmere)");
    }

    #[test]
    fn haswell_cluster_uses_the_newer_processor() {
        let c = ClusterConfig::three_node_haswell();
        assert_eq!(c.node.arch.name, "Xeon E5-2620 v3 (Haswell)");
        assert_eq!(c.slave_nodes(), 2);
    }

    #[test]
    fn clusters_resolve_by_slug_and_reporting_name() {
        for slug in ClusterConfig::NAMES {
            let c = ClusterConfig::by_name(slug).expect(slug);
            assert_eq!(ClusterConfig::by_name(c.name).expect(c.name), c);
            assert_eq!(
                ClusterConfig::by_name(&slug.to_ascii_uppercase()).expect(slug),
                c
            );
        }
        assert_eq!(
            ClusterConfig::by_name("five-node-westmere"),
            Some(ClusterConfig::five_node_westmere())
        );
        assert_eq!(ClusterConfig::by_name("nine-node-zen4"), None);
    }

    #[test]
    fn degenerate_single_node_cluster_still_has_one_worker() {
        let mut c = ClusterConfig::five_node_westmere();
        c.total_nodes = 1;
        assert_eq!(c.slave_nodes(), 1);
    }
}
