//! TensorFlow Inception-V3 on ILSVRC2012.
//!
//! The paper trains Inception-V3 (299×299×3 input) for 1 000 steps with
//! batch size 32 on four workers plus one parameter server.  The layer
//! graph below follows the published architecture: the convolutional stem,
//! three Inception-A modules, a grid-reduction module, four Inception-B
//! modules, a second reduction, two Inception-C modules, global average
//! pooling and the fully connected classifier.  Each module is expanded
//! into its constituent convolution / pooling layers with the published
//! channel counts (branch convolutions are modelled at the module's
//! operating resolution).

use dmpb_datagen::image::{ImageGenerator, TensorShape};
use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::tensorflow::{
    per_node_training_profile, LayerSpec, NetworkSpec, TrainingConfig,
};
use crate::workload::{Workload, WorkloadKind};

/// Number of ILSVRC2012 training images.
const ILSVRC_TRAIN_IMAGES: u64 = 1_281_167;
/// Average stored size of one ILSVRC2012 JPEG in bytes.
const ILSVRC_IMAGE_BYTES: u64 = 110 * 1024;

/// The TensorFlow Inception-V3 workload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionV3 {
    /// Total training steps across the cluster.
    pub total_steps: u64,
    /// Batch size per step.
    pub batch_size: u32,
}

impl InceptionV3 {
    /// The Section III configuration: 1 000 steps, batch 32.
    pub fn paper_configuration() -> Self {
        Self {
            total_steps: 1_000,
            batch_size: 32,
        }
    }

    /// The Section IV-B configuration: 200 steps, batch 32.
    pub fn reconfigured(total_steps: u64) -> Self {
        Self {
            total_steps,
            ..Self::paper_configuration()
        }
    }

    /// Appends the convolutions of one Inception-A-style module operating
    /// at `size`×`size` with `channels` input channels.
    fn inception_a(layers: &mut Vec<LayerSpec>, size: u32, channels: u32) {
        use MotifKind::*;
        // 1x1, 5x5 (via 1x1 + 5x5), 3x3 double, pool projection branches.
        layers.push(LayerSpec::new(Convolution, size, size, channels, 1));
        layers.push(LayerSpec::new(Convolution, size, size, channels, 1));
        layers.push(LayerSpec::new(Convolution, size, size, 48, 5));
        layers.push(LayerSpec::new(Convolution, size, size, channels, 1));
        layers.push(LayerSpec::new(Convolution, size, size, 64, 3));
        layers.push(LayerSpec::new(Convolution, size, size, 96, 3));
        layers.push(LayerSpec::new(AveragePooling, size, size, channels, 3));
        layers.push(LayerSpec::new(Convolution, size, size, channels, 1));
        layers.push(LayerSpec::new(BatchNormalization, size, size, 288, 1));
        layers.push(LayerSpec::new(Relu, size, size, 288, 1));
    }

    /// Appends one Inception-B-style (factorised 7x7) module at 17×17.
    fn inception_b(layers: &mut Vec<LayerSpec>, channels: u32) {
        use MotifKind::*;
        layers.push(LayerSpec::new(Convolution, 17, 17, channels, 1));
        layers.push(LayerSpec::new(Convolution, 17, 17, channels, 1));
        layers.push(LayerSpec::new(Convolution, 17, 17, 128, 7));
        layers.push(LayerSpec::new(Convolution, 17, 17, channels, 1));
        layers.push(LayerSpec::new(Convolution, 17, 17, 128, 7));
        layers.push(LayerSpec::new(Convolution, 17, 17, 128, 7));
        layers.push(LayerSpec::new(AveragePooling, 17, 17, channels, 3));
        layers.push(LayerSpec::new(Convolution, 17, 17, channels, 1));
        layers.push(LayerSpec::new(BatchNormalization, 17, 17, 768, 1));
        layers.push(LayerSpec::new(Relu, 17, 17, 768, 1));
    }

    /// Appends one Inception-C-style module at 8×8.
    fn inception_c(layers: &mut Vec<LayerSpec>, channels: u32) {
        use MotifKind::*;
        layers.push(LayerSpec::new(Convolution, 8, 8, channels, 1));
        layers.push(LayerSpec::new(Convolution, 8, 8, channels, 1));
        layers.push(LayerSpec::new(Convolution, 8, 8, 384, 3));
        layers.push(LayerSpec::new(Convolution, 8, 8, channels, 1));
        layers.push(LayerSpec::new(Convolution, 8, 8, 448, 3));
        layers.push(LayerSpec::new(Convolution, 8, 8, 384, 3));
        layers.push(LayerSpec::new(AveragePooling, 8, 8, channels, 3));
        layers.push(LayerSpec::new(Convolution, 8, 8, channels, 1));
        layers.push(LayerSpec::new(BatchNormalization, 8, 8, 2048, 1));
        layers.push(LayerSpec::new(Relu, 8, 8, 2048, 1));
    }

    /// The Inception-V3 layer graph.
    pub fn network() -> NetworkSpec {
        use MotifKind::*;
        // Stem: 299x299x3 -> 35x35x192.
        let mut layers = vec![
            LayerSpec::new(Convolution, 299, 299, 3, 3),
            LayerSpec::new(Convolution, 149, 149, 32, 3),
            LayerSpec::new(Convolution, 147, 147, 32, 3),
            LayerSpec::new(MaxPooling, 147, 147, 64, 3),
            LayerSpec::new(Convolution, 73, 73, 64, 1),
            LayerSpec::new(Convolution, 73, 73, 80, 3),
            LayerSpec::new(MaxPooling, 71, 71, 192, 3),
            LayerSpec::new(BatchNormalization, 35, 35, 192, 1),
        ];
        // 3 × Inception-A at 35x35.
        for _ in 0..3 {
            Self::inception_a(&mut layers, 35, 288);
        }
        // Grid reduction to 17x17.
        layers.push(LayerSpec::new(Convolution, 35, 35, 288, 3));
        layers.push(LayerSpec::new(MaxPooling, 35, 35, 288, 3));
        // 4 × Inception-B at 17x17.
        for _ in 0..4 {
            Self::inception_b(&mut layers, 768);
        }
        // Grid reduction to 8x8.
        layers.push(LayerSpec::new(Convolution, 17, 17, 768, 3));
        layers.push(LayerSpec::new(MaxPooling, 17, 17, 768, 3));
        // 2 × Inception-C at 8x8.
        for _ in 0..2 {
            Self::inception_c(&mut layers, 1280);
        }
        // Head: global average pooling, dropout, classifier.
        layers.push(LayerSpec::new(AveragePooling, 8, 8, 2048, 8));
        layers.push(LayerSpec::new(Dropout, 1, 2048, 1, 1));
        layers.push(LayerSpec::new(FullyConnected, 1, 2048, 1, 1));
        layers.push(LayerSpec::new(Softmax, 1, 1000, 1, 1));
        layers.push(LayerSpec::new(ReduceMax, 1, 1000, 1, 1));

        NetworkSpec {
            name: "Inception-V3",
            layers,
            input_image_bytes: ILSVRC_IMAGE_BYTES,
        }
    }

    fn training(&self) -> TrainingConfig {
        TrainingConfig {
            total_steps: self.total_steps,
            batch_size: self.batch_size,
        }
    }
}

impl Workload for InceptionV3 {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::InceptionV3
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        ImageGenerator::descriptor(TensorShape::ilsvrc2012(1), ILSVRC_TRAIN_IMAGES)
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        vec![
            (MotifClass::Transform, 0.55),
            (MotifClass::Matrix, 0.20),
            (MotifClass::Sampling, 0.10),
            (MotifClass::Statistics, 0.10),
            (MotifClass::Logic, 0.05),
        ]
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        vec![
            MotifKind::Convolution,
            MotifKind::FullyConnected,
            MotifKind::Softmax,
            MotifKind::MaxPooling,
            MotifKind::AveragePooling,
            MotifKind::Dropout,
            MotifKind::Relu,
            MotifKind::BatchNormalization,
        ]
    }

    /// An Inception module is the canonical fork/join: the stem's feature
    /// maps fan out into parallel towers (max-pool tower, average-pool
    /// tower, and the ReLU path feeding the auxiliary classifier head)
    /// that join again at the filter concatenation before the classifier.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let batch = b.node("batch");
        let stem = b.node("stem");
        let max_tower = b.node("tower-max-pool");
        let avg_tower = b.node("tower-avg-pool");
        let aux = b.node("aux-head");
        let concat = b.node("filter-concat");
        let logits = b.node("logits");
        let probs = b.node("probabilities");
        b.edge(batch, stem, MotifKind::Convolution);
        b.edge(stem, max_tower, MotifKind::MaxPooling);
        b.edge(stem, avg_tower, MotifKind::AveragePooling);
        b.edge(stem, aux, MotifKind::Relu);
        b.edge(max_tower, concat, MotifKind::BatchNormalization);
        b.edge(avg_tower, concat, MotifKind::Dropout);
        b.edge(concat, logits, MotifKind::FullyConnected);
        b.edge(logits, probs, MotifKind::Softmax);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_training_profile(&Self::network(), self.training(), cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_section_iii() {
        let i = InceptionV3::paper_configuration();
        assert_eq!(i.total_steps, 1_000);
        assert_eq!(i.batch_size, 32);
    }

    #[test]
    fn network_is_much_deeper_than_alexnet() {
        let inception = InceptionV3::network();
        let alexnet = crate::tensorflow::AlexNet::network();
        assert!(inception.num_layers() > 3 * alexnet.num_layers());
        assert!(
            inception.num_convolutions() > 40,
            "convs {}",
            inception.num_convolutions()
        );
    }

    #[test]
    fn per_step_cost_exceeds_alexnet() {
        // Inception-V3 on 299x299 inputs does far more work per image than
        // the CIFAR-sized AlexNet, which is why the paper's Inception run
        // takes longer despite 10x fewer steps.
        let cluster = ClusterConfig::five_node_westmere();
        let inception = InceptionV3 {
            total_steps: 100,
            batch_size: 32,
        }
        .per_node_profile(&cluster)
        .total_instructions();
        let alexnet = crate::tensorflow::AlexNet {
            total_steps: 100,
            batch_size: 128,
        }
        .per_node_profile(&cluster)
        .total_instructions();
        assert!(
            inception > 3 * alexnet,
            "inception {inception} alexnet {alexnet}"
        );
    }

    #[test]
    fn profile_is_cpu_bound_with_negligible_disk() {
        let cluster = ClusterConfig::five_node_westmere();
        let m = InceptionV3::paper_configuration().measure(&cluster);
        assert!(m.disk_io_bw_mbps < 10.0, "disk {}", m.disk_io_bw_mbps);
        assert!(m.instruction_mix.floating_point > 0.3);
    }
}
