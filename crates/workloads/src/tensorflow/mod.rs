//! Models of the two TensorFlow workloads: AlexNet and Inception-V3.

pub mod alexnet;
pub mod inception_v3;

pub use alexnet::AlexNet;
pub use inception_v3::InceptionV3;
