//! TensorFlow AlexNet on CIFAR-10.
//!
//! The paper trains the CIFAR-10-sized AlexNet variant (32×32×3 input) for
//! 10 000 steps with batch size 128 on four workers plus one parameter
//! server.  The layer list below follows the classic AlexNet structure
//! (five convolutions with interleaved pooling and normalisation, then
//! three fully connected layers with dropout), with spatial dimensions
//! adapted to the CIFAR-10 input as BigDataBench's implementation does.
//! Table III lists the involved motifs as Matrix, Sampling, Transform and
//! Statistics.

use dmpb_datagen::image::ImageGenerator;
use dmpb_datagen::image::TensorShape;
use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::tensorflow::{
    per_node_training_profile, LayerSpec, NetworkSpec, TrainingConfig,
};
use crate::workload::{Workload, WorkloadKind};

/// Number of CIFAR-10 training images (per epoch).
const CIFAR10_TRAIN_IMAGES: u64 = 50_000;
/// Bytes of one stored CIFAR-10 image (3 × 32 × 32 bytes + label).
const CIFAR10_IMAGE_BYTES: u64 = 3 * 32 * 32 + 1;

/// The TensorFlow AlexNet workload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlexNet {
    /// Total training steps across the cluster.
    pub total_steps: u64,
    /// Batch size per step.
    pub batch_size: u32,
}

impl AlexNet {
    /// The Section III configuration: 10 000 steps, batch 128.
    pub fn paper_configuration() -> Self {
        Self {
            total_steps: 10_000,
            batch_size: 128,
        }
    }

    /// The Section IV-B configuration on the re-configured cluster:
    /// 3 000 steps, batch 128.
    pub fn reconfigured(total_steps: u64) -> Self {
        Self {
            total_steps,
            ..Self::paper_configuration()
        }
    }

    /// The CIFAR-10-sized AlexNet layer graph.
    pub fn network() -> NetworkSpec {
        use MotifKind::*;
        NetworkSpec {
            name: "AlexNet",
            layers: vec![
                // conv1 + relu + pool + norm
                LayerSpec::new(Convolution, 32, 32, 3, 5),
                LayerSpec::new(Relu, 32, 32, 64, 1),
                LayerSpec::new(MaxPooling, 32, 32, 64, 3),
                LayerSpec::new(BatchNormalization, 16, 16, 64, 1),
                // conv2 + relu + pool + norm
                LayerSpec::new(Convolution, 16, 16, 64, 5),
                LayerSpec::new(Relu, 16, 16, 64, 1),
                LayerSpec::new(MaxPooling, 16, 16, 64, 3),
                LayerSpec::new(BatchNormalization, 8, 8, 64, 1),
                // conv3-5 + relu
                LayerSpec::new(Convolution, 8, 8, 64, 3),
                LayerSpec::new(Relu, 8, 8, 128, 1),
                LayerSpec::new(Convolution, 8, 8, 128, 3),
                LayerSpec::new(Relu, 8, 8, 128, 1),
                LayerSpec::new(Convolution, 8, 8, 128, 3),
                LayerSpec::new(Relu, 8, 8, 128, 1),
                LayerSpec::new(MaxPooling, 8, 8, 128, 2),
                // Classifier: fc6, fc7, fc8 with dropout, softmax output.
                LayerSpec::new(FullyConnected, 4, 4, 128, 1),
                LayerSpec::new(Relu, 1, 384, 1, 1),
                LayerSpec::new(Dropout, 1, 384, 1, 1),
                LayerSpec::new(FullyConnected, 1, 384, 1, 1),
                LayerSpec::new(Relu, 1, 192, 1, 1),
                LayerSpec::new(Dropout, 1, 192, 1, 1),
                LayerSpec::new(FullyConnected, 1, 192, 1, 1),
                LayerSpec::new(Softmax, 1, 10, 1, 1),
            ],
            input_image_bytes: CIFAR10_IMAGE_BYTES,
        }
    }

    fn training(&self) -> TrainingConfig {
        TrainingConfig {
            total_steps: self.total_steps,
            batch_size: self.batch_size,
        }
    }
}

impl Workload for AlexNet {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::AlexNet
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive, memory intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        ImageGenerator::descriptor(TensorShape::cifar10(1), CIFAR10_TRAIN_IMAGES)
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        vec![
            (MotifClass::Transform, 0.50),
            (MotifClass::Matrix, 0.25),
            (MotifClass::Sampling, 0.10),
            (MotifClass::Statistics, 0.15),
        ]
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        // Table III lists Proxy AlexNet's implementations as fully connected,
        // max pooling, convolution and batch normalisation.
        vec![
            MotifKind::Convolution,
            MotifKind::FullyConnected,
            MotifKind::MaxPooling,
            MotifKind::BatchNormalization,
        ]
    }

    /// AlexNet's feature maps fork (mirroring the original two-GPU tower
    /// split): max pooling feeds the classifier while the local-response
    /// normalisation branch conditions the activations.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let batch = b.node("batch");
        let features = b.node("feature-maps");
        let pooled = b.node("pooled");
        let normalised = b.node("normalised");
        let logits = b.node("logits");
        b.edge(batch, features, MotifKind::Convolution);
        b.edge(features, pooled, MotifKind::MaxPooling);
        b.edge(features, normalised, MotifKind::BatchNormalization);
        b.edge(pooled, logits, MotifKind::FullyConnected);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_training_profile(&Self::network(), self.training(), cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_section_iii() {
        let a = AlexNet::paper_configuration();
        assert_eq!(a.total_steps, 10_000);
        assert_eq!(a.batch_size, 128);
    }

    #[test]
    fn network_has_five_convolutions_and_three_fc_layers() {
        let n = AlexNet::network();
        assert_eq!(n.num_convolutions(), 5);
        let fc = n
            .layers
            .iter()
            .filter(|l| l.motif == MotifKind::FullyConnected)
            .count();
        assert_eq!(fc, 3);
    }

    #[test]
    fn profile_is_floating_point_heavy() {
        let cluster = ClusterConfig::five_node_westmere();
        let p = AlexNet::paper_configuration().per_node_profile(&cluster);
        assert!(
            p.instructions.mix().floating_point > 0.30,
            "fp {}",
            p.instructions.mix().floating_point
        );
    }

    #[test]
    fn disk_pressure_is_low() {
        let cluster = ClusterConfig::five_node_westmere();
        let m = AlexNet::paper_configuration().measure(&cluster);
        assert!(m.disk_io_bw_mbps < 5.0, "disk bw {}", m.disk_io_bw_mbps);
    }

    #[test]
    fn fewer_steps_run_faster() {
        let cluster = ClusterConfig::three_node_westmere_64gb();
        let long = AlexNet::paper_configuration().measure(&cluster);
        let short = AlexNet::reconfigured(3_000).measure(&cluster);
        assert!(short.runtime_secs < long.runtime_secs);
    }
}
