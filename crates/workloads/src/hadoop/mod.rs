//! Models of the three Hadoop workloads: TeraSort, K-means and PageRank.

pub mod kmeans;
pub mod pagerank;
pub mod terasort;

pub use kmeans::KMeans;
pub use pagerank::PageRank;
pub use terasort::TeraSort;
