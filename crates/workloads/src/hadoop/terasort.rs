//! Hadoop TeraSort: the I/O-intensive workload of the evaluation.
//!
//! 100 GB of gensort records are sampled to derive partition boundaries,
//! each map task sorts its chunk, the shuffle routes each key range to its
//! reducer, and the reducers merge the sorted runs and write the globally
//! sorted output back to HDFS.  Table III lists the involved motifs as
//! Sort, Sampling and Graph (the partition trie), and the paper quotes the
//! initial proxy weights as 70 % sort, 10 % sampling and 20 % graph.

use dmpb_datagen::text::TextGenerator;
use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::mapreduce::{per_node_job_profile, JobShape};
use crate::workload::{Workload, WorkloadKind};

/// Fraction of the input that the partition sampler inspects.
const SAMPLING_FRACTION: f64 = 0.02;
/// Size of the partition structure (trie over splitter keys) relative to
/// the input.
const PARTITION_STRUCTURE_FRACTION: f64 = 0.001;

/// The Hadoop TeraSort workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeraSort {
    /// Total input volume in bytes.
    pub input_bytes: u64,
}

impl TeraSort {
    /// The paper's Section III configuration: 100 GB of gensort text.
    pub fn paper_configuration() -> Self {
        Self {
            input_bytes: 100 << 30,
        }
    }

    /// A scaled-down configuration for quick experiments and tests.
    pub fn scaled(input_bytes: u64) -> Self {
        Self { input_bytes }
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.input_bytes / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        // Motif-level disk accounting is replaced by the job model, so the
        // spill flag only matters for the proxies.
        let data = TextGenerator::descriptor(per_node);
        let sample = data.scaled_to((per_node as f64 * SAMPLING_FRACTION) as u64);
        let partition = data.scaled_to((per_node as f64 * PARTITION_STRUCTURE_FRACTION) as u64);
        vec![
            // Map side: chunk sort; reduce side: merge of sorted runs.
            MotifKind::QuickSort.cost_profile(&data, &config),
            MotifKind::MergeSort.cost_profile(&data, &config),
            // Partition sampling.
            MotifKind::RandomSampling.cost_profile(&sample, &config),
            MotifKind::IntervalSampling.cost_profile(&sample, &config),
            // Partition trie construction and lookups.
            MotifKind::GraphConstruct.cost_profile(&partition, &config),
            MotifKind::GraphTraversal.cost_profile(&data.scaled_to(per_node / 10), &config),
        ]
    }

    fn job_shape(&self) -> JobShape {
        JobShape {
            input_bytes: self.input_bytes,
            shuffle_ratio: 1.0,
            output_ratio: 1.0,
            // TeraSort conventionally writes its output with replication 1.
            output_replication: 1,
            heap_bytes: 8 << 30,
            pipeline_factor: 1.0,
        }
    }
}

impl Workload for TeraSort {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::TeraSort
    }

    fn pattern(&self) -> &'static str {
        "I/O intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        TextGenerator::descriptor(self.input_bytes)
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        vec![
            (MotifClass::Sort, 0.70),
            (MotifClass::Sampling, 0.10),
            (MotifClass::Graph, 0.20),
        ]
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        vec![
            MotifKind::QuickSort,
            MotifKind::MergeSort,
            MotifKind::RandomSampling,
            MotifKind::IntervalSampling,
            MotifKind::GraphConstruct,
            MotifKind::GraphTraversal,
        ]
    }

    /// TeraSort's map phase forks: the partition sampler inspects the
    /// input concurrently with the map-side chunk sort, and the resulting
    /// partition trie joins the sorted runs at the shuffle (each record is
    /// routed by a trie lookup).  The reducers then merge the runs.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("input");
        let samples = b.node("samples");
        let splitters = b.node("splitters");
        let trie = b.node("partition-trie");
        let runs = b.node("sorted-runs");
        let output = b.node("output");
        b.edge(input, samples, MotifKind::RandomSampling);
        b.edge(samples, splitters, MotifKind::IntervalSampling);
        b.edge(splitters, trie, MotifKind::GraphConstruct);
        b.edge(input, runs, MotifKind::QuickSort);
        b.edge(trie, runs, MotifKind::GraphTraversal);
        b.edge(runs, output, MotifKind::MergeSort);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_job_profile(
            &self.job_shape(),
            cluster,
            self.user_profiles(cluster),
            "hadoop-terasort",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_perfmodel::ExecutionEngine;

    #[test]
    fn paper_configuration_is_100gb() {
        let t = TeraSort::paper_configuration();
        assert_eq!(t.input_bytes, 100 << 30);
        assert_eq!(t.input_descriptor().element_count(), (100 << 30) / 100);
    }

    #[test]
    fn profile_is_io_heavy_and_integer_dominated() {
        let t = TeraSort::paper_configuration();
        let cluster = ClusterConfig::five_node_westmere();
        let p = t.per_node_profile(&cluster);
        assert!(
            p.total_disk_bytes() > 50 << 30,
            "disk {}",
            p.total_disk_bytes()
        );
        let mix = p.instructions.mix();
        assert!(mix.floating_point < 0.05, "fp {}", mix.floating_point);
        assert!(mix.integer > 0.3);
    }

    #[test]
    fn composition_weights_match_the_paper_example() {
        let comp = TeraSort::paper_configuration().motif_composition();
        let total: f64 = comp.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(comp[0], (MotifClass::Sort, 0.70));
    }

    #[test]
    fn measured_runtime_is_in_the_hundreds_of_seconds() {
        let t = TeraSort::paper_configuration();
        let cluster = ClusterConfig::five_node_westmere();
        let engine = ExecutionEngine::new(cluster.node.arch);
        let m = engine.run(&t.per_node_profile(&cluster), cluster.tasks_per_node);
        assert!(
            (200.0..=6000.0).contains(&m.runtime_secs),
            "runtime {}",
            m.runtime_secs
        );
    }

    #[test]
    fn fewer_nodes_means_longer_runtime() {
        let t = TeraSort::paper_configuration();
        let five = t.measure(&ClusterConfig::five_node_westmere());
        let three = t.measure(&ClusterConfig::three_node_westmere_64gb());
        assert!(three.runtime_secs > five.runtime_secs);
    }
}
