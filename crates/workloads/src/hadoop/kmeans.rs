//! Hadoop K-means: the CPU- and memory-intensive workload.
//!
//! 100 GB of sparse feature vectors (90 % sparsity from BDGS) are assigned
//! to centroids (distance computation), per-cluster statistics are
//! aggregated (count / average) and the new centroids are broadcast for
//! the next iteration.  Table III lists the involved motifs as Matrix,
//! Sort and Statistics.  The paper's Fig. 7 / Fig. 8 case study drives the
//! same workload with dense (0 % sparse) vectors, so the sparsity is a
//! parameter of this model.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::mapreduce::{per_node_job_profile, JobShape};
use crate::workload::{Workload, WorkloadKind};

/// Dimensionality of the modelled feature vectors (400 bytes / 8 per value,
/// matching the vector descriptor's element size).
const VECTOR_DIM: usize = 50;

/// How many times more expensive Mahout's JVM-based per-value math is than
/// the native distance kernel (object iteration, boxing, virtual calls).
/// Calibrated so the K-means runtime lands well above TeraSort's, as the
/// paper reports (5 971 s vs 1 500 s on the five-node cluster).
const MAHOUT_MATH_OVERHEAD: f64 = 30.0;

/// The Hadoop K-means workload model (one iteration, as the paper times a
/// single iteration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeans {
    /// Total input volume in bytes.
    pub input_bytes: u64,
    /// Sparsity of the input vectors (0.9 in Section III, 0.0 in the
    /// dense case study).
    pub sparsity: f64,
}

impl KMeans {
    /// The paper's Section III configuration: 100 GB, 90 % sparse.
    pub fn paper_configuration() -> Self {
        Self {
            input_bytes: 100 << 30,
            sparsity: 0.9,
        }
    }

    /// The dense-input variant of the Fig. 7 / Fig. 8 case study.
    pub fn dense_configuration() -> Self {
        Self {
            sparsity: 0.0,
            ..Self::paper_configuration()
        }
    }

    /// A scaled-down configuration.
    pub fn scaled(input_bytes: u64, sparsity: f64) -> Self {
        Self {
            input_bytes,
            sparsity,
        }
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.input_bytes / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = self.input_descriptor().scaled_to(per_node);
        // Aggregation outputs (per-cluster partial sums) are tiny compared
        // to the input.
        let aggregates = data.scaled_to(per_node / 100);
        // The assignment step dominates: distance of every vector to every
        // centroid, paid through Mahout's object-based vector math.
        let distance = MotifKind::DistanceCalculation
            .cost_profile(&data, &config)
            .scaled(MAHOUT_MATH_OVERHEAD);
        vec![
            distance,
            // Update: per-cluster count / average statistics.
            MotifKind::CountStatistics.cost_profile(&data, &config),
            MotifKind::MinMax.cost_profile(&aggregates, &config),
            // Combiner-side ordering of per-cluster partials.
            MotifKind::QuickSort.cost_profile(&aggregates, &config),
            MotifKind::MergeSort.cost_profile(&aggregates, &config),
        ]
    }

    fn job_shape(&self) -> JobShape {
        JobShape {
            input_bytes: self.input_bytes,
            // Only per-cluster partial sums cross the shuffle.
            shuffle_ratio: 0.01,
            output_ratio: 0.001,
            output_replication: 2,
            heap_bytes: 12 << 30,
            // Each vector is deserialised once; the bulk of the time is the
            // numeric assignment loop, not the writable pipeline.
            pipeline_factor: 0.3,
        }
    }
}

impl Workload for KMeans {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::KMeans
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive, memory intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        // The 100 GB input always occupies 100 GB on disk: dense vectors
        // store every value (8 bytes each), sparse vectors store only the
        // non-zero values as (index, value) pairs plus a small header, so a
        // sparser data set packs more vectors into the same volume — as the
        // BDGS-generated inputs of the paper do.
        let values_per_vector = (VECTOR_DIM as f64 * (1.0 - self.sparsity)).max(1.0);
        let per_vector_bytes = if self.sparsity > 0.0 {
            (values_per_vector * 12.0) as u64 + 16
        } else {
            VECTOR_DIM as u64 * 8
        };
        DataDescriptor::new(
            dmpb_datagen::DataClass::Vector,
            self.input_bytes,
            per_vector_bytes,
            self.sparsity,
            dmpb_datagen::Distribution::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            },
        )
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        vec![
            (MotifClass::Matrix, 0.55),
            (MotifClass::Statistics, 0.30),
            (MotifClass::Sort, 0.15),
        ]
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        vec![
            MotifKind::DistanceCalculation,
            MotifKind::QuickSort,
            MotifKind::MergeSort,
            MotifKind::CountStatistics,
            MotifKind::MinMax,
        ]
    }

    /// One K-means iteration forks after the distance-based assignment:
    /// the combiner sorts records by cluster id while the partial sums are
    /// accumulated, and both join at the reducer that recomputes the
    /// centroids and checks movement extents.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("points");
        let assign = b.node("assignments");
        let sorted = b.node("sorted-by-cluster");
        let partials = b.node("partial-sums");
        let centroids = b.node("centroids");
        b.edge(input, assign, MotifKind::DistanceCalculation);
        b.edge(assign, sorted, MotifKind::QuickSort);
        b.edge(assign, partials, MotifKind::CountStatistics);
        b.edge(sorted, centroids, MotifKind::MergeSort);
        b.edge(partials, centroids, MotifKind::MinMax);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_job_profile(
            &self.job_shape(),
            cluster,
            self.user_profiles(cluster),
            "hadoop-kmeans",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_sparse_100gb() {
        let k = KMeans::paper_configuration();
        assert_eq!(k.input_bytes, 100 << 30);
        assert_eq!(k.sparsity, 0.9);
        assert_eq!(k.input_descriptor().sparsity, 0.9);
    }

    #[test]
    fn dense_configuration_only_changes_sparsity() {
        let d = KMeans::dense_configuration();
        assert_eq!(d.sparsity, 0.0);
        assert_eq!(d.input_bytes, 100 << 30);
    }

    #[test]
    fn kmeans_is_lighter_on_disk_than_terasort() {
        let cluster = ClusterConfig::five_node_westmere();
        let k = KMeans::paper_configuration().per_node_profile(&cluster);
        let t = crate::hadoop::TeraSort::paper_configuration().per_node_profile(&cluster);
        assert!(k.total_disk_bytes() < t.total_disk_bytes() / 2);
    }

    #[test]
    fn dense_input_is_more_floating_point_dominated() {
        let cluster = ClusterConfig::five_node_westmere();
        let sparse = KMeans::paper_configuration().per_node_profile(&cluster);
        let dense = KMeans::dense_configuration().per_node_profile(&cluster);
        assert!(
            dense.instructions.mix().floating_point > sparse.instructions.mix().floating_point,
            "dense {} sparse {}",
            dense.instructions.mix().floating_point,
            sparse.instructions.mix().floating_point
        );
    }

    #[test]
    fn sparsity_changes_behaviour_not_just_volume() {
        // The Fig. 7 case study drives the same workload with sparse and
        // dense vectors of identical volume.  In this model the dense run
        // finishes faster (its inner loops vectorise) while the sparse run
        // spends more instructions per byte; the memory bandwidths stay in
        // the same range.  (The paper observes a larger bandwidth gap; see
        // EXPERIMENTS.md for the discussion of this deviation.)
        let cluster = ClusterConfig::five_node_westmere();
        let sparse = KMeans::paper_configuration().measure(&cluster);
        let dense = KMeans::dense_configuration().measure(&cluster);
        assert!(dense.runtime_secs < sparse.runtime_secs);
        let ratio = dense.mem_total_bw_mbps() / sparse.mem_total_bw_mbps();
        assert!((0.5..=3.0).contains(&ratio), "bandwidth ratio {ratio}");
        assert!(dense.instruction_mix.floating_point > sparse.instruction_mix.floating_point);
    }
}
