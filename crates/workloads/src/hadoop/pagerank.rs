//! Hadoop PageRank: the CPU- and I/O-intensive workload.
//!
//! A 2^26-vertex power-law graph (BDGS) is iterated: the graph is expressed
//! as a sparse matrix, each iteration multiplies the rank vector by that
//! matrix, contributions are aggregated per vertex (out-degree / in-degree
//! statistics, min/max for convergence checks) and the updated ranks are
//! written back to HDFS for the next iteration.  Table III lists the
//! involved motifs as Matrix, Sort and Statistics.

use dmpb_datagen::graph::GraphSpec;
use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::mapreduce::{per_node_job_profile, JobShape};
use crate::workload::{Workload, WorkloadKind};

/// Average out-degree of the modelled graph (BDGS graphs are sparse).
const AVG_DEGREE: usize = 16;

/// The Hadoop PageRank workload model (one iteration, as timed by the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Number of vertices (the paper uses 2^26).
    pub num_vertices: u64,
}

impl PageRank {
    /// The paper's Section III configuration: a 2^26-vertex graph.
    pub fn paper_configuration() -> Self {
        Self {
            num_vertices: 1 << 26,
        }
    }

    /// A scaled-down configuration.
    pub fn scaled(num_vertices: u64) -> Self {
        Self { num_vertices }
    }

    /// Total edge bytes of the modelled graph.
    fn graph_bytes(&self) -> u64 {
        self.num_vertices * AVG_DEGREE as u64 * 8
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.graph_bytes() / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = self.input_descriptor().scaled_to(per_node);
        let ranks = data.scaled_to(self.num_vertices * 8 / u64::from(cluster.slave_nodes()));
        vec![
            // Adjacency / matrix construction and the rank propagation
            // (sparse matrix times rank vector).
            MotifKind::GraphConstruct.cost_profile(&data, &config),
            MotifKind::MatrixMultiply.cost_profile(&ranks, &config),
            MotifKind::GraphTraversal.cost_profile(&data, &config),
            // Out-degree / in-degree counting and convergence min/max.
            MotifKind::CountStatistics.cost_profile(&data, &config),
            MotifKind::MinMax.cost_profile(&ranks, &config),
            // Per-vertex contribution ordering on the reduce side.
            MotifKind::QuickSort.cost_profile(&ranks, &config),
        ]
    }

    fn job_shape(&self) -> JobShape {
        JobShape {
            input_bytes: self.graph_bytes(),
            // Rank contributions for every edge cross the shuffle.
            shuffle_ratio: 0.8,
            output_ratio: 0.1,
            output_replication: 2,
            heap_bytes: 10 << 30,
            pipeline_factor: 1.0,
        }
    }
}

impl Workload for PageRank {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::PageRank
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive, I/O intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        GraphSpec::power_law(self.num_vertices as usize, AVG_DEGREE, 0x5052).descriptor()
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        vec![
            (MotifClass::Matrix, 0.40),
            (MotifClass::Graph, 0.25),
            (MotifClass::Statistics, 0.20),
            (MotifClass::Sort, 0.15),
        ]
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        vec![
            MotifKind::GraphConstruct,
            MotifKind::GraphTraversal,
            MotifKind::MatrixMultiply,
            MotifKind::QuickSort,
            MotifKind::MinMax,
            MotifKind::CountStatistics,
        ]
    }

    /// PageRank forks on the adjacency structure: the rank-contribution
    /// matrix product and the frontier traversal read it concurrently and
    /// join at the rank aggregation (dangling-node mass is folded in by
    /// the min-max clamp); the final ranks are sorted for output.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("edge-list");
        let adjacency = b.node("adjacency");
        let contribs = b.node("contributions");
        let frontier = b.node("frontier");
        let ranks = b.node("ranks");
        let output = b.node("top-ranks");
        b.edge(input, adjacency, MotifKind::GraphConstruct);
        b.edge(adjacency, contribs, MotifKind::MatrixMultiply);
        b.edge(adjacency, frontier, MotifKind::GraphTraversal);
        b.edge(contribs, ranks, MotifKind::CountStatistics);
        b.edge(frontier, ranks, MotifKind::MinMax);
        b.edge(ranks, output, MotifKind::QuickSort);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_job_profile(
            &self.job_shape(),
            cluster,
            self.user_profiles(cluster),
            "hadoop-pagerank",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_has_2_pow_26_vertices() {
        let p = PageRank::paper_configuration();
        assert_eq!(p.num_vertices, 1 << 26);
        assert_eq!(
            p.input_descriptor().element_count(),
            (1 << 26) * AVG_DEGREE as u64
        );
    }

    #[test]
    fn profile_mixes_cpu_and_io() {
        let cluster = ClusterConfig::five_node_westmere();
        let p = PageRank::paper_configuration().per_node_profile(&cluster);
        assert!(p.total_disk_bytes() > 1 << 30);
        assert!(p.total_instructions() > 1_000_000_000);
    }

    #[test]
    fn graph_size_scales_the_work() {
        let cluster = ClusterConfig::five_node_westmere();
        let small = PageRank::scaled(1 << 20).per_node_profile(&cluster);
        let big = PageRank::scaled(1 << 24).per_node_profile(&cluster);
        assert!(big.total_instructions() > 8 * small.total_instructions());
    }
}
