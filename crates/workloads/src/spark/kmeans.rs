//! Spark K-means: the CPU- and memory-intensive workload on the Spark
//! stack.
//!
//! The same 100 GB of sparse feature vectors as Hadoop K-means, but run as
//! MLlib runs it: the vector RDD is deserialised once, cached in memory,
//! and every Lloyd iteration assigns vectors to centroids and aggregates
//! per-cluster statistics with a `reduceByKey`-style tree aggregation —
//! only the tiny partial sums cross the shuffle.  The motif DAG is
//! identical to the Hadoop twin (Matrix, Statistics, Sort); the stack
//! differences are the cached iterations (no per-iteration HDFS scan) and
//! MLlib's primitive-array math instead of Mahout's boxed vector objects.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::spark::{per_node_app_profile, AppShape};
use crate::hadoop::KMeans;
use crate::workload::{Workload, WorkloadKind};

/// How many times more expensive MLlib's JVM-based per-value math is than
/// the native distance kernel.  Breeze operates on primitive arrays — far
/// cheaper than Mahout's boxed object iteration (30x in the Hadoop model)
/// but still a managed runtime away from the bare kernel.
const MLLIB_MATH_OVERHEAD: f64 = 6.0;

/// The Spark K-means workload model (a short cached Lloyd run, unlike the
/// single materialised iteration the Hadoop model times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparkKMeans {
    /// Total input volume in bytes.
    pub input_bytes: u64,
    /// Sparsity of the input vectors.
    pub sparsity: f64,
    /// Lloyd iterations over the cached RDD.
    pub iterations: u32,
}

impl SparkKMeans {
    /// The reference configuration: the Hadoop twin's 100 GB / 90 %-sparse
    /// input, iterated five times over the cached RDD.
    pub fn reference_configuration() -> Self {
        Self {
            input_bytes: 100 << 30,
            sparsity: 0.9,
            iterations: 5,
        }
    }

    /// A scaled-down configuration.
    pub fn scaled(input_bytes: u64, sparsity: f64, iterations: u32) -> Self {
        Self {
            input_bytes,
            sparsity,
            iterations,
        }
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.input_bytes / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = self.input_descriptor().scaled_to(per_node);
        let aggregates = data.scaled_to(per_node / 100);
        let iterations = f64::from(self.iterations.max(1));
        // The assignment step dominates every iteration: distance of every
        // cached vector to every centroid through Breeze's primitive-array
        // math.
        let distance = MotifKind::DistanceCalculation
            .cost_profile(&data, &config)
            .scaled(MLLIB_MATH_OVERHEAD * iterations);
        vec![
            distance,
            // Update: per-cluster count / average statistics, every
            // iteration.
            MotifKind::CountStatistics
                .cost_profile(&data, &config)
                .scaled(iterations),
            MotifKind::MinMax
                .cost_profile(&aggregates, &config)
                .scaled(iterations),
            // Tree-aggregation ordering of per-cluster partials.
            MotifKind::QuickSort
                .cost_profile(&aggregates, &config)
                .scaled(iterations),
            MotifKind::MergeSort
                .cost_profile(&aggregates, &config)
                .scaled(iterations),
        ]
    }

    fn app_shape(&self) -> AppShape {
        AppShape {
            input_bytes: self.input_bytes,
            iterations: self.iterations,
            // The deserialised vector RDD fits the executors' memory.
            cached_fraction: 1.0,
            // Only per-cluster partial sums cross the tree aggregation.
            wide_shuffle_ratio: 0.01,
            output_ratio: 0.001,
            output_replication: 2,
            heap_bytes: 20 << 30,
            // Each vector is deserialised once into the cache; the numeric
            // loops run on primitive arrays afterwards.
            pipeline_factor: 0.3,
        }
    }
}

impl Workload for SparkKMeans {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::SparkKMeans
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive, memory intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        // Same on-disk layout as the Hadoop twin (BDGS sparse vectors).
        KMeans::scaled(self.input_bytes, self.sparsity).input_descriptor()
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        KMeans::paper_configuration().motif_composition()
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        KMeans::paper_configuration().involved_motifs()
    }

    /// Spark K-means assigns points from the cached RDD, then
    /// `treeAggregate`s: per-partition sum and extent accumulators are
    /// computed in parallel branches and joined at the driver, where the
    /// merged partials yield the new centroids.  Same motifs as the Hadoop
    /// twin, Spark's aggregation shape.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let cached = b.node("cached-points");
        let assign = b.node("assignments");
        let sums = b.node("partial-sums");
        let extents = b.node("partial-extents");
        let centroids = b.node("centroids");
        b.edge(cached, assign, MotifKind::DistanceCalculation);
        b.edge(assign, sums, MotifKind::CountStatistics);
        b.edge(assign, extents, MotifKind::MinMax);
        b.edge(sums, centroids, MotifKind::MergeSort);
        b.edge(extents, centroids, MotifKind::QuickSort);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_app_profile(
            &self.app_shape(),
            cluster,
            self.user_profiles(cluster),
            "spark-kmeans",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configuration_matches_the_hadoop_twin_input() {
        let s = SparkKMeans::reference_configuration();
        let h = KMeans::paper_configuration();
        assert_eq!(s.input_bytes, h.input_bytes);
        assert_eq!(s.sparsity, h.sparsity);
        assert_eq!(s.input_descriptor(), h.input_descriptor());
        assert_eq!(s.motif_composition(), h.motif_composition());
        assert_eq!(s.involved_motifs(), h.involved_motifs());
        assert_eq!(s.iterations, 5);
    }

    #[test]
    fn cached_iterations_are_lighter_on_disk_than_one_hadoop_iteration() {
        let cluster = ClusterConfig::five_node_westmere();
        let spark = SparkKMeans::reference_configuration().per_node_profile(&cluster);
        let hadoop = KMeans::paper_configuration().per_node_profile(&cluster);
        // Five cached iterations still read the input from HDFS only once,
        // so total disk traffic stays in the range of the single
        // materialised Hadoop iteration.
        assert!(
            spark.total_disk_bytes() < 2 * hadoop.total_disk_bytes(),
            "spark {} vs hadoop {}",
            spark.total_disk_bytes(),
            hadoop.total_disk_bytes()
        );
    }

    #[test]
    fn per_iteration_cost_is_far_below_mahouts() {
        let cluster = ClusterConfig::five_node_westmere();
        let spark = SparkKMeans::reference_configuration();
        let per_iteration = spark.measure(&cluster).runtime_secs / f64::from(spark.iterations);
        let hadoop = KMeans::paper_configuration().measure(&cluster).runtime_secs;
        assert!(
            per_iteration < hadoop / 3.0,
            "spark per-iteration {per_iteration} vs hadoop {hadoop}"
        );
    }

    #[test]
    fn more_iterations_scale_compute_but_not_input_io() {
        let cluster = ClusterConfig::five_node_westmere();
        let short = SparkKMeans::scaled(10 << 30, 0.9, 2);
        let long = SparkKMeans::scaled(10 << 30, 0.9, 8);
        let p_short = short.per_node_profile(&cluster);
        let p_long = long.per_node_profile(&cluster);
        assert!(p_long.total_instructions() > 3 * p_short.total_instructions());
        // The cached input is read once either way; only shuffle and output
        // traffic grow.
        assert!(p_long.disk_read_bytes < p_short.disk_read_bytes * 2);
    }

    #[test]
    fn five_cached_iterations_cost_about_one_mahout_iteration() {
        let cluster = ClusterConfig::five_node_westmere();
        let m = SparkKMeans::reference_configuration().measure(&cluster);
        let hadoop = KMeans::paper_configuration().measure(&cluster);
        assert!(m.runtime_secs > 200.0, "runtime {}", m.runtime_secs);
        assert!(
            m.runtime_secs < 2.0 * hadoop.runtime_secs,
            "runtime {} (hadoop {})",
            m.runtime_secs,
            hadoop.runtime_secs
        );
    }
}
