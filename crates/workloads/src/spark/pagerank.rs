//! Spark PageRank: the CPU- and I/O-intensive workload on the Spark stack.
//!
//! The same 2^26-vertex power-law graph as Hadoop PageRank, iterated as
//! GraphX / the classic RDD implementation does: the edge list is parsed
//! and cached once, and every iteration joins ranks with adjacency,
//! scatters contributions across a wide `reduceByKey` shuffle and
//! aggregates the new ranks — without writing the graph back to HDFS
//! between iterations.  The motif DAG is identical to the Hadoop twin
//! (Matrix, Graph, Statistics, Sort); the stack differences are the cached
//! edge RDD and the per-iteration contribution shuffle being the only
//! serde boundary.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::spark::{per_node_app_profile, AppShape};
use crate::hadoop::PageRank;
use crate::workload::{Workload, WorkloadKind};

/// The Spark PageRank workload model (a short cached power-iteration run,
/// unlike the single materialised iteration the Hadoop model times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparkPageRank {
    /// Number of vertices (2^26, as the Hadoop twin).
    pub num_vertices: u64,
    /// Power iterations over the cached graph.
    pub iterations: u32,
}

impl SparkPageRank {
    /// The reference configuration: the Hadoop twin's 2^26-vertex graph,
    /// iterated five times over the cached edge RDD.
    pub fn reference_configuration() -> Self {
        Self {
            num_vertices: 1 << 26,
            iterations: 5,
        }
    }

    /// A scaled-down configuration.
    pub fn scaled(num_vertices: u64, iterations: u32) -> Self {
        Self {
            num_vertices,
            iterations,
        }
    }

    /// Total edge bytes of the modelled graph, taken from the shared
    /// descriptor so the twins can never disagree about the input size
    /// (the Hadoop model owns the vertex-degree assumption).
    fn graph_bytes(&self) -> u64 {
        self.input_descriptor().total_bytes
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.graph_bytes() / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = self.input_descriptor().scaled_to(per_node);
        let ranks = data.scaled_to(self.num_vertices * 8 / u64::from(cluster.slave_nodes()));
        let iterations = f64::from(self.iterations.max(1));
        vec![
            // Adjacency construction and the pointer-heavy structure walk
            // happen once — the cached edge partitions are then iterated
            // sequentially by the per-iteration join, not re-traversed.
            MotifKind::GraphConstruct.cost_profile(&data, &config),
            MotifKind::GraphTraversal.cost_profile(&data, &config),
            // Propagation, aggregation and convergence checks run every
            // iteration over the cached graph.
            MotifKind::MatrixMultiply
                .cost_profile(&ranks, &config)
                .scaled(iterations),
            MotifKind::CountStatistics
                .cost_profile(&data, &config)
                .scaled(iterations),
            MotifKind::MinMax
                .cost_profile(&ranks, &config)
                .scaled(iterations),
            MotifKind::QuickSort
                .cost_profile(&ranks, &config)
                .scaled(iterations),
        ]
    }

    fn app_shape(&self) -> AppShape {
        AppShape {
            input_bytes: self.graph_bytes(),
            iterations: self.iterations,
            // The cached edge RDD mostly fits; a slice of the partitions is
            // evicted and re-materialised under memory pressure.
            cached_fraction: 0.9,
            // Rank contributions for every edge cross the per-iteration
            // `reduceByKey` shuffle.
            wide_shuffle_ratio: 0.5,
            // Only the final ranks are written out, not the graph.
            output_ratio: 0.1,
            output_replication: 2,
            heap_bytes: 16 << 30,
            // Contribution tuples are boxed (vertex-id, rank) pairs
            // serialised record-at-a-time on both shuffle sides — the
            // classic RDD PageRank has no columnar fast path.
            pipeline_factor: 0.9,
        }
    }
}

impl Workload for SparkPageRank {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::SparkPageRank
    }

    fn pattern(&self) -> &'static str {
        "CPU intensive, I/O intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        // Same BDGS power-law graph as the Hadoop twin.
        PageRank::scaled(self.num_vertices).input_descriptor()
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        PageRank::paper_configuration().motif_composition()
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        PageRank::paper_configuration().involved_motifs()
    }

    /// Spark PageRank caches the links RDD and forks on it every
    /// iteration: the rank-link join (a wide dependency) and the
    /// contribution flatMap read the same cached lineage and join at the
    /// `reduceByKey` rank aggregation (with the damping clamp); the final
    /// ranks are sorted for output.  Same motifs as the Hadoop twin,
    /// Spark's lineage shape.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("edge-list");
        let links = b.node("links-rdd");
        let joined = b.node("rank-link-join");
        let contribs = b.node("contributions");
        let ranks = b.node("ranks-rdd");
        let output = b.node("top-ranks");
        b.edge(input, links, MotifKind::GraphConstruct);
        b.edge(links, joined, MotifKind::GraphTraversal);
        b.edge(links, contribs, MotifKind::MatrixMultiply);
        b.edge(joined, ranks, MotifKind::CountStatistics);
        b.edge(contribs, ranks, MotifKind::MinMax);
        b.edge(ranks, output, MotifKind::QuickSort);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_app_profile(
            &self.app_shape(),
            cluster,
            self.user_profiles(cluster),
            "spark-pagerank",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configuration_matches_the_hadoop_twin_graph() {
        let s = SparkPageRank::reference_configuration();
        let h = PageRank::paper_configuration();
        assert_eq!(s.num_vertices, h.num_vertices);
        assert_eq!(s.input_descriptor(), h.input_descriptor());
        assert_eq!(s.motif_composition(), h.motif_composition());
        assert_eq!(s.involved_motifs(), h.involved_motifs());
    }

    #[test]
    fn profile_mixes_cpu_and_io() {
        let cluster = ClusterConfig::five_node_westmere();
        let p = SparkPageRank::reference_configuration().per_node_profile(&cluster);
        assert!(p.total_disk_bytes() > 1 << 30);
        assert!(p.total_instructions() > 1_000_000_000);
    }

    #[test]
    fn graph_size_scales_the_work() {
        let cluster = ClusterConfig::five_node_westmere();
        let small = SparkPageRank::scaled(1 << 20, 5).per_node_profile(&cluster);
        let big = SparkPageRank::scaled(1 << 24, 5).per_node_profile(&cluster);
        assert!(big.total_instructions() > 8 * small.total_instructions());
    }

    #[test]
    fn five_cached_iterations_cost_less_than_five_hadoop_jobs() {
        let cluster = ClusterConfig::five_node_westmere();
        let spark = SparkPageRank::reference_configuration().measure(&cluster);
        let one_hadoop_job = PageRank::paper_configuration().measure(&cluster);
        assert!(
            spark.runtime_secs < 5.0 * one_hadoop_job.runtime_secs,
            "spark x5 {} vs hadoop x1 {}",
            spark.runtime_secs,
            one_hadoop_job.runtime_secs
        );
        // And the per-iteration disk traffic is far below a Hadoop job's:
        // the graph is cached, not re-materialised.
        let spark_profile = SparkPageRank::reference_configuration().per_node_profile(&cluster);
        let hadoop_profile = PageRank::paper_configuration().per_node_profile(&cluster);
        assert!(spark_profile.disk_read_bytes / 5 < hadoop_profile.disk_read_bytes);
    }
}
