//! Spark TeraSort: the I/O-intensive workload on the Spark stack.
//!
//! The same 100 GB of gensort records as Hadoop TeraSort, sorted with
//! `sortByKey`: partition boundaries are sampled, each map-side task sorts
//! its partition, the sort-based shuffle routes each key range to its
//! range-partitioned reducer, and the sorted output is written back to
//! HDFS.  The motif DAG is identical to the Hadoop variant (Sort, Sampling
//! and Graph for the partition trie, 70/10/20); the difference is the
//! stack: one wide `sortByKey` boundary instead of a spill/merge on every
//! hop, and the cheaper unsafe-shuffle serde path.

use dmpb_datagen::text::TextGenerator;
use dmpb_datagen::DataDescriptor;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;

use crate::cluster::ClusterConfig;
use crate::framework::spark::{per_node_app_profile, AppShape};
use crate::hadoop::TeraSort;
use crate::workload::{Workload, WorkloadKind};

/// Fraction of the input inspected by the range-partition sampler
/// (`RangePartitioner` samples much less than Hadoop's TotalOrderPartitioner
/// scan).
const SAMPLING_FRACTION: f64 = 0.01;
/// Size of the partition structure (trie over splitter keys) relative to
/// the input.
const PARTITION_STRUCTURE_FRACTION: f64 = 0.001;

/// The Spark TeraSort workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparkTeraSort {
    /// Total input volume in bytes.
    pub input_bytes: u64,
}

impl SparkTeraSort {
    /// The reference configuration matching the Hadoop twin: 100 GB of
    /// gensort text (BigDataBench ships Spark TeraSort over the same
    /// input).
    pub fn reference_configuration() -> Self {
        Self {
            input_bytes: 100 << 30,
        }
    }

    /// A scaled-down configuration for quick experiments and tests.
    pub fn scaled(input_bytes: u64) -> Self {
        Self { input_bytes }
    }

    fn user_profiles(&self, cluster: &ClusterConfig) -> Vec<OpProfile> {
        let per_node = self.input_bytes / u64::from(cluster.slave_nodes());
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = TextGenerator::descriptor(per_node);
        let sample = data.scaled_to((per_node as f64 * SAMPLING_FRACTION) as u64);
        let partition = data.scaled_to((per_node as f64 * PARTITION_STRUCTURE_FRACTION) as u64);
        vec![
            // Map side: per-partition sort; reduce side: merge of the
            // fetched sorted runs (same kernels as the Hadoop twin).
            MotifKind::QuickSort.cost_profile(&data, &config),
            MotifKind::MergeSort.cost_profile(&data, &config),
            // Range-partition sampling.
            MotifKind::RandomSampling.cost_profile(&sample, &config),
            MotifKind::IntervalSampling.cost_profile(&sample, &config),
            // Partition trie construction and lookups.
            MotifKind::GraphConstruct.cost_profile(&partition, &config),
            MotifKind::GraphTraversal.cost_profile(&data.scaled_to(per_node / 10), &config),
        ]
    }

    fn app_shape(&self) -> AppShape {
        AppShape {
            input_bytes: self.input_bytes,
            // One pass, nothing to cache across iterations.
            iterations: 1,
            cached_fraction: 0.0,
            // `sortByKey` shuffles every record byte exactly once.
            wide_shuffle_ratio: 1.0,
            output_ratio: 1.0,
            // TeraSort conventionally writes its output with replication 1.
            output_replication: 1,
            heap_bytes: 12 << 30,
            // The serialised shuffle still touches every byte, but through
            // the unsafe-row path rather than writables and comparators.
            pipeline_factor: 0.8,
        }
    }
}

impl Workload for SparkTeraSort {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::SparkTeraSort
    }

    fn pattern(&self) -> &'static str {
        "I/O intensive"
    }

    fn input_descriptor(&self) -> DataDescriptor {
        TextGenerator::descriptor(self.input_bytes)
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        // Identical motif DAG to the Hadoop twin (Table III).
        TeraSort::paper_configuration().motif_composition()
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        TeraSort::paper_configuration().involved_motifs()
    }

    /// Spark's `sortByKey` is one wide dependency: the `RangePartitioner`
    /// sample job forks off the shuffle-block map build, both feed the
    /// wide shuffle (fetches are routed through the range bounds, blocks
    /// are partition-sorted map-side), and the post-shuffle partitions are
    /// merged into the output.  Same motifs as the Hadoop twin, Spark's
    /// lineage shape.
    fn dag_plan(&self) -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("input-rdd");
        let sampled = b.node("sampled-keys");
        let bounds = b.node("range-bounds");
        let blocks = b.node("shuffle-blocks");
        let partitions = b.node("shuffled-partitions");
        let output = b.node("output");
        b.edge(input, sampled, MotifKind::RandomSampling);
        b.edge(sampled, bounds, MotifKind::IntervalSampling);
        b.edge(input, blocks, MotifKind::GraphConstruct);
        b.edge(bounds, partitions, MotifKind::GraphTraversal);
        b.edge(blocks, partitions, MotifKind::QuickSort);
        b.edge(partitions, output, MotifKind::MergeSort);
        b.build()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        per_node_app_profile(
            &self.app_shape(),
            cluster,
            self.user_profiles(cluster),
            "spark-terasort",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configuration_matches_the_hadoop_twin() {
        let s = SparkTeraSort::reference_configuration();
        let h = TeraSort::paper_configuration();
        assert_eq!(s.input_bytes, h.input_bytes);
        assert_eq!(s.input_descriptor(), h.input_descriptor());
        assert_eq!(s.motif_composition(), h.motif_composition());
        assert_eq!(s.involved_motifs(), h.involved_motifs());
    }

    #[test]
    fn profile_is_io_heavy_and_integer_dominated() {
        let cluster = ClusterConfig::five_node_westmere();
        let p = SparkTeraSort::reference_configuration().per_node_profile(&cluster);
        assert!(
            p.total_disk_bytes() > 40 << 30,
            "disk {}",
            p.total_disk_bytes()
        );
        let mix = p.instructions.mix();
        assert!(mix.floating_point < 0.05, "fp {}", mix.floating_point);
        assert!(mix.integer > 0.3);
    }

    #[test]
    fn spark_sort_is_faster_than_hadoop_sort_on_the_same_input() {
        let cluster = ClusterConfig::five_node_westmere();
        let spark = SparkTeraSort::reference_configuration().measure(&cluster);
        let hadoop = TeraSort::paper_configuration().measure(&cluster);
        assert!(
            spark.runtime_secs < hadoop.runtime_secs,
            "spark {} vs hadoop {}",
            spark.runtime_secs,
            hadoop.runtime_secs
        );
        // But not free: it is the same 100 GB through the same 1 GbE-class
        // disks, so the gap stays well under an order of magnitude.
        assert!(spark.runtime_secs > hadoop.runtime_secs / 10.0);
    }

    #[test]
    fn measured_runtime_is_in_the_hundreds_of_seconds() {
        let cluster = ClusterConfig::five_node_westmere();
        let m = SparkTeraSort::reference_configuration().measure(&cluster);
        assert!(
            (200.0..=6000.0).contains(&m.runtime_secs),
            "runtime {}",
            m.runtime_secs
        );
    }

    #[test]
    fn fewer_nodes_means_longer_runtime() {
        let t = SparkTeraSort::reference_configuration();
        let five = t.measure(&ClusterConfig::five_node_westmere());
        let three = t.measure(&ClusterConfig::three_node_westmere_64gb());
        assert!(three.runtime_secs > five.runtime_secs);
    }
}
