//! Models of the three Spark workloads: TeraSort, K-means and PageRank.
//!
//! Each Spark workload reuses its Hadoop twin's motif DAG decomposition
//! (Table III: the hotspot functions are the same algorithms) and the same
//! input data set, but composes the motifs with the Spark stack model of
//! [`crate::framework::spark`] instead of the MapReduce one — in-memory
//! cached iterations for K-means and PageRank rather than per-iteration
//! HDFS materialisation, and serde paid only at wide-dependency shuffles.
//! The pairing gives the suite a direct Hadoop-vs-Spark comparison on
//! identical motifs and inputs (see
//! [`crate::workload::WorkloadKind::stack_twin`]).

pub mod kmeans;
pub mod pagerank;
pub mod terasort;

pub use kmeans::SparkKMeans;
pub use pagerank::SparkPageRank;
pub use terasort::SparkTeraSort;
