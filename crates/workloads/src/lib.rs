//! # dmpb-workloads — models of the original big data and AI workloads
//!
//! The paper evaluates its proxy benchmarks against five real workloads
//! from BigDataBench 4.0 running on a Hadoop / TensorFlow cluster; the
//! companion data-motif characterisation paper profiles the same motifs on
//! **Spark** as well and shows the software stack dominates behaviour, so
//! this crate models the paper's five plus the three Spark twins:
//!
//! | Workload | Pattern | Input |
//! |---|---|---|
//! | Hadoop TeraSort | I/O intensive | 100 GB gensort text |
//! | Hadoop K-means | CPU + memory intensive | 100 GB sparse vectors (90 % sparse) |
//! | Hadoop PageRank | CPU + I/O intensive | 2^26-vertex graph |
//! | TensorFlow AlexNet | CPU + memory intensive | CIFAR-10, batch 128, 10 000 steps |
//! | TensorFlow Inception-V3 | CPU intensive | ILSVRC2012, batch 32, 1 000 steps |
//! | Spark TeraSort | I/O intensive | 100 GB gensort text |
//! | Spark K-means | CPU + memory intensive | 100 GB sparse vectors, 5 cached iterations |
//! | Spark PageRank | CPU + I/O intensive | 2^26-vertex graph, 5 cached iterations |
//!
//! Neither Hadoop, Spark, TensorFlow nor the cluster exist in this
//! reproduction, so this crate models the originals: each workload
//! composes the motif cost models of `dmpb-motifs` (the same ones the
//! proxies are built from) with **software-stack overhead models** — the
//! JVM / MapReduce runtime ([`framework::jvm`], [`framework::mapreduce`]),
//! the Spark RDD/DAG runtime with in-memory caching
//! ([`framework::spark`]), and the TensorFlow graph executor with its
//! parameter-server step loop ([`framework::tensorflow`]) — plus the
//! HDFS-style disk traffic and the cluster topology ([`cluster`]).  The
//! result of a workload model is a per-node [`dmpb_perfmodel::OpProfile`],
//! measured by the same [`dmpb_perfmodel::ExecutionEngine`] that measures
//! the proxies.
//!
//! The [`workload::Workload`] trait is the entry point;
//! [`workload::all_workloads`] returns the eight workloads, and each
//! Hadoop workload's [`workload::WorkloadKind::stack_twin`] names the
//! Spark variant that shares its motif DAG and input.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod framework;
pub mod hadoop;
pub mod spark;
pub mod tensorflow;
pub mod workload;

pub use cluster::ClusterConfig;
pub use workload::{all_workloads, workload_by_kind, Framework, Workload, WorkloadKind};
