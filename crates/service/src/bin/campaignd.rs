//! `campaignd` — the campaign service daemon.
//!
//! ```text
//! campaignd [--addr HOST:PORT] [--store FILE.jsonl] [--workers N] [--queue-depth N]
//!           [--chunk-elements N] [--store-shards N]
//! ```
//!
//! `--store-shards N` opens the store in the sharded layout with N
//! segments (a legacy single-file store is migrated in place; an
//! existing sharded store directory keeps its own segment count).
//!
//! Binds the address (default `127.0.0.1:7070`; port `0` picks an
//! ephemeral port), prints the bound address on stdout as
//! `campaignd: listening on <addr>`, and serves until killed.

use std::path::PathBuf;

use dmpb_service::{serve, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: campaignd [--addr HOST:PORT] [--store FILE.jsonl] [--workers N] [--queue-depth N] [--chunk-elements N] [--store-shards N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..ServiceConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("campaignd: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--store" => config.store_path = Some(PathBuf::from(value("--store"))),
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|e| {
                    eprintln!("campaignd: bad --workers: {e}");
                    usage()
                })
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth").parse().unwrap_or_else(|e| {
                    eprintln!("campaignd: bad --queue-depth: {e}");
                    usage()
                })
            }
            "--chunk-elements" => {
                let n: usize = value("--chunk-elements").parse().unwrap_or_else(|e| {
                    eprintln!("campaignd: bad --chunk-elements: {e}");
                    usage()
                });
                if n == 0 {
                    eprintln!("campaignd: --chunk-elements must be positive");
                    usage()
                }
                config.chunk_elements = Some(n);
            }
            "--store-shards" => {
                let n: usize = value("--store-shards").parse().unwrap_or_else(|e| {
                    eprintln!("campaignd: bad --store-shards: {e}");
                    usage()
                });
                if n == 0 {
                    eprintln!("campaignd: --store-shards must be positive");
                    usage()
                }
                config.store_shards = Some(n);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("campaignd: unknown flag {other}");
                usage()
            }
        }
    }

    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("campaignd: {e}");
            std::process::exit(1);
        }
    };
    println!("campaignd: listening on {}", handle.addr());

    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
