//! `campaignctl` — client for the campaign daemon.
//!
//! ```text
//! campaignctl submit <scenario.toml> --addr HOST:PORT
//! campaignctl wait <id> --addr HOST:PORT [--timeout-secs N]
//! campaignctl metrics --addr HOST:PORT
//! campaignctl wait-healthy --addr HOST:PORT [--timeout-secs N]
//! campaignctl smoke --addr HOST:PORT
//! ```
//!
//! `smoke` drives the end-to-end check CI relies on: it submits the
//! bundled decomposition scenario twice (cold, then warm), waits for
//! both, and asserts the warm run is byte-identical and at least 90 %
//! store-served, with `/metrics` agreeing.

use std::time::{Duration, Instant};

use dmpb_service::http::http_request;

const TIMEOUT: Duration = Duration::from_secs(30);

fn usage() -> ! {
    eprintln!(
        "usage: campaignctl <submit FILE | wait ID | metrics | wait-healthy | smoke> \
         --addr HOST:PORT [--timeout-secs N]"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("campaignctl: {message}");
    std::process::exit(1);
}

struct Args {
    command: String,
    operand: Option<String>,
    addr: String,
    timeout: Duration,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    let mut operand = None;
    let mut addr = None;
    let mut timeout = Duration::from_secs(120);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => addr = argv.next(),
            "--timeout-secs" => {
                let value = argv.next().unwrap_or_else(|| usage());
                timeout = Duration::from_secs(
                    value
                        .parse()
                        .unwrap_or_else(|e| fail(format!("bad --timeout-secs: {e}"))),
                );
            }
            "--help" | "-h" => usage(),
            other if operand.is_none() && !other.starts_with('-') => {
                operand = Some(other.to_string())
            }
            other => fail(format!("unknown argument {other}")),
        }
    }
    let Some(addr) = addr else {
        fail("--addr HOST:PORT is required");
    };
    Args {
        command,
        operand,
        addr,
        timeout,
    }
}

/// Pulls a string field out of a flat JSON body.
fn json_field(body: &[u8], key: &str) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let fields = dmpb_metrics::json::parse_object(text.trim()).ok()?;
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str().map(str::to_string))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn submit(addr: &str, source: &[u8]) -> (String, usize) {
    let (status, _, body) =
        http_request(addr, "POST", "/campaigns", source, TIMEOUT).unwrap_or_else(|e| fail(e));
    if status != 202 {
        fail(format!(
            "submit rejected with {status}: {}",
            String::from_utf8_lossy(&body).trim()
        ));
    }
    let id = json_field(&body, "id").unwrap_or_else(|| fail("submit response has no id"));
    let cells = std::str::from_utf8(&body)
        .ok()
        .and_then(|text| dmpb_metrics::json::parse_object(text.trim()).ok())
        .and_then(|fields| {
            fields
                .iter()
                .find(|(k, _)| k == "cells")
                .and_then(|(_, v)| v.as_int())
        })
        .unwrap_or(0) as usize;
    (id, cells)
}

/// Polls `GET /campaigns/<id>` until it stops answering 202.
fn wait(addr: &str, id: &str, timeout: Duration) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, headers, body) =
            http_request(addr, "GET", &format!("/campaigns/{id}"), b"", TIMEOUT)
                .unwrap_or_else(|e| fail(e));
        if status != 202 {
            return (status, headers, body);
        }
        if Instant::now() >= deadline {
            fail(format!("campaign {id} still pending after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls `GET /healthz` until the daemon answers 200, or fails (exit 1)
/// once the `--timeout-secs` deadline passes.  Every attempt's own
/// network timeout is capped by the remaining budget, so a black-holed
/// address (where connects hang rather than getting refused) cannot
/// overshoot the deadline the way the pre-PR 7 unbounded connect did.
fn wait_healthy(addr: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let mut attempts = 0u32;
    let mut last_error = String::new();
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            fail(format!(
                "{addr} not healthy after {timeout:?} ({attempts} attempt(s), last error: {}) — \
                 is campaignd listening there?",
                if last_error.is_empty() {
                    "none"
                } else {
                    &last_error
                }
            ));
        }
        attempts += 1;
        match http_request(addr, "GET", "/healthz", b"", TIMEOUT.min(remaining)) {
            Ok((200, _, _)) => {
                println!("campaignctl: {addr} healthy after {attempts} attempt(s)");
                return;
            }
            Ok((status, _, _)) => last_error = format!("/healthz answered {status}"),
            Err(e) => last_error = e,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Reads an un-labelled metric's value from a `/metrics` page.
fn metric_value(page: &str, name: &str) -> Option<f64> {
    page.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

fn smoke(addr: &str, timeout: Duration) {
    wait_healthy(addr, timeout);
    let scenario = dmpb_scenario::builtin::DECOMPOSITION_TOML.as_bytes();

    println!("smoke: submitting cold run");
    let (cold_id, cells) = submit(addr, scenario);
    let (status, _, cold_body) = wait(addr, &cold_id, timeout);
    if status != 200 {
        fail(format!(
            "cold run failed ({status}): {}",
            String::from_utf8_lossy(&cold_body).trim()
        ));
    }

    println!("smoke: submitting warm run");
    let (warm_id, _) = submit(addr, scenario);
    let (status, warm_headers, warm_body) = wait(addr, &warm_id, timeout);
    if status != 200 {
        fail(format!(
            "warm run failed ({status}): {}",
            String::from_utf8_lossy(&warm_body).trim()
        ));
    }

    if warm_body != cold_body {
        fail("warm report differs from cold report (store should serve identical bytes)");
    }
    let served: usize = header(&warm_headers, "x-dmpb-store-served")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail("warm response missing x-dmpb-store-served"));
    let reported_cells: usize = header(&warm_headers, "x-dmpb-cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail("warm response missing x-dmpb-cells"));
    if reported_cells != cells || cells == 0 {
        fail(format!(
            "cell count mismatch: submit said {cells}, report says {reported_cells}"
        ));
    }
    if (served as f64) < 0.9 * cells as f64 {
        fail(format!(
            "warm run only {served}/{cells} store-served (expected >= 90%)"
        ));
    }

    let (status, _, metrics) =
        http_request(addr, "GET", "/metrics", b"", TIMEOUT).unwrap_or_else(|e| fail(e));
    if status != 200 {
        fail(format!("/metrics answered {status}"));
    }
    let page = String::from_utf8_lossy(&metrics);
    let hits = metric_value(&page, "dmpb_store_hits_total")
        .unwrap_or_else(|| fail("metrics missing dmpb_store_hits_total"));
    let completed = metric_value(&page, "dmpb_campaigns_completed_total")
        .unwrap_or_else(|| fail("metrics missing dmpb_campaigns_completed_total"));
    if hits < served as f64 {
        fail(format!(
            "metrics report {hits} store hits but the warm run alone was served {served}"
        ));
    }
    if completed < 2.0 {
        fail(format!(
            "metrics report {completed} completed campaigns, expected >= 2"
        ));
    }

    println!("smoke: ok — {cells} cells, warm run {served} store-served, reports byte-identical");
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "submit" => {
            let path = args.operand.unwrap_or_else(|| usage());
            let source = std::fs::read(&path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
            let (id, cells) = submit(&args.addr, &source);
            println!("{id} queued ({cells} cells)");
        }
        "wait" => {
            let id = args.operand.unwrap_or_else(|| usage());
            let (status, headers, body) = wait(&args.addr, &id, args.timeout);
            if status != 200 {
                fail(format!(
                    "campaign {id} failed ({status}): {}",
                    String::from_utf8_lossy(&body).trim()
                ));
            }
            let served = header(&headers, "x-dmpb-store-served").unwrap_or("?");
            let cells = header(&headers, "x-dmpb-cells").unwrap_or("?");
            eprintln!("campaignctl: {id} done, {served}/{cells} store-served");
            print!("{}", String::from_utf8_lossy(&body));
        }
        "metrics" => {
            let (status, _, body) = http_request(&args.addr, "GET", "/metrics", b"", TIMEOUT)
                .unwrap_or_else(|e| fail(e));
            if status != 200 {
                fail(format!("/metrics answered {status}"));
            }
            print!("{}", String::from_utf8_lossy(&body));
        }
        "wait-healthy" => wait_healthy(&args.addr, args.timeout),
        "smoke" => smoke(&args.addr, args.timeout),
        _ => usage(),
    }
}
