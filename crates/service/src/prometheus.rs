//! Prometheus text-format exposition for the campaign service.
//!
//! Hand-rendered `text/plain; version=0.0.4` output: counters and gauges
//! over the shared result store, the admission queue and the campaign
//! lifecycle, plus the per-cell latency histogram in the cumulative
//! `le`-labelled convention Prometheus expects.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use dmpb_metrics::histogram::LATENCY_BUCKET_BOUNDS_NS;
use dmpb_motifs::KernelProfiler;

use crate::service::ServiceState;

fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the full `/metrics` page.
pub(crate) fn render_metrics(state: &ServiceState) -> String {
    let stats = state.runner.store_stats();
    let latency = state.latency.snapshot();
    let uptime = state.started.elapsed();
    let mut out = String::new();

    metric(
        &mut out,
        "dmpb_store_hits_total",
        "counter",
        "Result-store lookups served from the store.",
        stats.hits,
    );
    metric(
        &mut out,
        "dmpb_store_misses_total",
        "counter",
        "Result-store lookups that required computation.",
        stats.misses,
    );
    metric(
        &mut out,
        "dmpb_store_lookups_total",
        "counter",
        "Total result-store lookups (hits + misses).",
        stats.lookups(),
    );
    metric(
        &mut out,
        "dmpb_store_hit_ratio",
        "gauge",
        "Hit ratio over all lookups so far (0 before any lookup).",
        format_args!("{:.6}", stats.hit_ratio()),
    );
    metric(
        &mut out,
        "dmpb_store_entries",
        "gauge",
        "Distinct cell results currently held by the store.",
        stats.entries,
    );
    metric(
        &mut out,
        "dmpb_store_persist_errors_total",
        "counter",
        "Failed appends to the store's backing file (store degrades to in-memory after the first).",
        stats.persist_errors,
    );

    // Per-shard breakdowns of the same store counters (shard =
    // fingerprint % N, one series per segment file).  They sum exactly
    // to the aggregates above — the daemon test pins that.
    let shard_stats = state.runner.store().shard_stats();
    type ShardValue = fn(&dmpb_scenario::StoreStats) -> u64;
    let shard_families: [(&str, &str, &str, ShardValue); 4] = [
        (
            "dmpb_store_shard_hits_total",
            "counter",
            "Result-store lookups served from the store, by shard.",
            |s| s.hits,
        ),
        (
            "dmpb_store_shard_misses_total",
            "counter",
            "Result-store lookups that required computation, by shard.",
            |s| s.misses,
        ),
        (
            "dmpb_store_shard_entries",
            "gauge",
            "Distinct cell results currently held, by shard.",
            |s| s.entries as u64,
        ),
        (
            "dmpb_store_shard_persist_errors_total",
            "counter",
            "Failed appends to the shard's segment file, by shard.",
            |s| s.persist_errors,
        ),
    ];
    for (name, kind, help, value) in shard_families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (shard, stats) in shard_stats.iter().enumerate() {
            let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {}", value(stats));
        }
    }

    let counters = &state.counters;
    metric(
        &mut out,
        "dmpb_campaigns_submitted_total",
        "counter",
        "Campaigns accepted into the admission queue.",
        counters.submitted.load(Ordering::Relaxed),
    );
    metric(
        &mut out,
        "dmpb_campaigns_completed_total",
        "counter",
        "Campaigns that finished successfully.",
        counters.completed.load(Ordering::Relaxed),
    );
    metric(
        &mut out,
        "dmpb_campaigns_failed_total",
        "counter",
        "Campaigns that finished with cell failures.",
        counters.failed.load(Ordering::Relaxed),
    );
    metric(
        &mut out,
        "dmpb_campaigns_rejected_total",
        "counter",
        "Submissions bounced with 429 because the queue was full.",
        counters.rejected.load(Ordering::Relaxed),
    );
    metric(
        &mut out,
        "dmpb_campaigns_running",
        "gauge",
        "Campaigns currently executing (0 or 1: one dispatcher).",
        counters.running.load(Ordering::Relaxed),
    );
    // Synthetic population cells finished, one series per concrete
    // topology family — fixed, small cardinality, so all four series
    // are always exposed (a family that never ran reads 0).
    {
        let name = "dmpb_population_cells_total";
        let _ = writeln!(
            out,
            "# HELP {name} Synthetic population cells finished (computed or store-served), by topology family."
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for (index, family) in dmpb_population::TopologyFamily::CONCRETE.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{{family=\"{}\"}} {}",
                family.name(),
                counters.population_cells[index].load(Ordering::Relaxed)
            );
        }
    }
    metric(
        &mut out,
        "dmpb_queue_depth",
        "gauge",
        "Campaigns waiting in the admission queue.",
        state.queue_len(),
    );
    metric(
        &mut out,
        "dmpb_queue_capacity",
        "gauge",
        "Admission-queue capacity (submissions beyond it get 429).",
        state.queue_depth,
    );
    metric(
        &mut out,
        "dmpb_pool_workers",
        "gauge",
        "Worker-pool width campaigns are batched onto.",
        state.workers,
    );

    // Cumulative busy time over cumulative capacity: an approximation
    // (cells overlap on the pool), but monotone inputs make it cheap and
    // rate()-friendly.
    let capacity_ns = uptime.as_nanos().max(1) as f64 * state.workers as f64;
    metric(
        &mut out,
        "dmpb_pool_utilization_ratio",
        "gauge",
        "Cumulative cell wall-time over cumulative pool capacity since start.",
        format_args!("{:.6}", (latency.sum_ns as f64 / capacity_ns).min(1.0)),
    );
    metric(
        &mut out,
        "dmpb_uptime_seconds",
        "gauge",
        "Seconds since the daemon started.",
        format_args!("{:.3}", uptime.as_secs_f64()),
    );

    let name = "dmpb_cell_latency_seconds";
    let _ = writeln!(
        out,
        "# HELP {name} Per-cell campaign latency (store-served and computed)."
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    let cumulative = latency.cumulative();
    for (bound_ns, count) in LATENCY_BUCKET_BOUNDS_NS.iter().zip(cumulative.iter()) {
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {count}",
            format_bound_seconds(*bound_ns)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", latency.count);
    let _ = writeln!(out, "{name}_sum {:.9}", latency.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "{name}_count {}", latency.count);

    // Per-kind kernel execution counters from the process-global
    // profiler (`serve` turns it on at startup).  Only kinds that have
    // actually run appear — 33 all-zero series per family would be
    // exposition noise.
    let profile = KernelProfiler::global().snapshot();
    let invoked: Vec<_> = profile.kinds.iter().filter(|k| k.invocations > 0).collect();
    if !invoked.is_empty() {
        type EntryValue = fn(&dmpb_motifs::profile::KernelProfileEntry) -> String;
        let families: [(&str, &str, EntryValue); 3] = [
            (
                "dmpb_kernel_invocations_total",
                "Motif kernel executions by kind.",
                |k| k.invocations.to_string(),
            ),
            (
                "dmpb_kernel_elements_total",
                "Elements processed by motif kernels, by kind.",
                |k| k.elements.to_string(),
            ),
            (
                "dmpb_kernel_seconds_total",
                "Wall time spent in motif kernels, by kind.",
                |k| format!("{:.9}", k.ns as f64 / 1e9),
            ),
        ];
        for (name, help, value) in families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for entry in &invoked {
                let _ = writeln!(
                    out,
                    "{name}{{kind=\"{}\",class=\"{}\"}} {}",
                    entry.kind.name(),
                    entry.kind.class().name(),
                    value(entry)
                );
            }
        }
    }

    out
}

/// Formats a nanosecond bound as seconds without trailing zeros
/// (`10_000` → `0.00001`, `5_000_000_000` → `5`).
fn format_bound_seconds(ns: u64) -> String {
    let mut s = format!("{:.9}", ns as f64 / 1e9);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::format_bound_seconds;

    #[test]
    fn bounds_render_as_trimmed_seconds() {
        assert_eq!(format_bound_seconds(10_000), "0.00001");
        assert_eq!(format_bound_seconds(1_000_000), "0.001");
        assert_eq!(format_bound_seconds(1_000_000_000), "1");
        assert_eq!(format_bound_seconds(5_000_000_000), "5");
    }
}
