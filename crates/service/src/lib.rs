//! # dmpb-service — the long-running campaign service
//!
//! The campaign engine (PR 5) made sweeps declarative and cached; this
//! crate keeps the cache *warm across invocations* by putting one
//! [`CampaignRunner`](dmpb_scenario::CampaignRunner) — and therefore one
//! shared [`ResultStore`](dmpb_scenario::ResultStore) and one persistent
//! [`WorkerPool`](dmpb_motifs::workers::WorkerPool) — behind a small
//! HTTP/1.1 daemon:
//!
//! * `POST /campaigns` — submit a scenario-DSL file; answers `202` with
//!   a campaign id, `400` on parse errors, `429` when the fixed-depth
//!   admission queue is full, `503` while shutting down.
//! * `GET /campaigns/<id>` — `202` with JSON status while queued or
//!   running; `200` streaming the JSONL cell report (with
//!   `x-dmpb-cells`, `x-dmpb-store-served`, `x-dmpb-digest` and
//!   `x-dmpb-wall-ms` headers) once done; `500` with the error when the
//!   campaign failed.
//! * `GET /campaigns` — JSONL status of every submission, in order.
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — Prometheus-style text: store hit/miss counters and
//!   hit ratio, admission-queue depth, campaign lifecycle counters,
//!   pool width and utilization, and a per-cell latency histogram
//!   recorded through [`dmpb_metrics::LatencyHistogram`].
//!
//! Everything is hand-rolled over std TCP ([`http`]) — no external web
//! framework — with every input bounded, so the daemon degrades rather
//! than dies: full queues answer `429`, store persistence failures fall
//! back to in-memory operation, and panicking cells fail their campaign
//! without taking the service down.
//!
//! Two binaries ship with the crate: `campaignd` (the daemon) and
//! `campaignctl` (submit / wait / metrics / smoke client).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
mod prometheus;
mod service;

pub use service::{serve, CampaignStatus, ServiceConfig, ServiceHandle};
