//! A hand-rolled HTTP/1.1 codec over std TCP.
//!
//! No external web framework is available offline, and the service needs
//! only a sliver of the protocol: one request per connection
//! (`Connection: close`), `Content-Length` bodies, and a handful of
//! status codes.  The parser is strict about what it accepts and bounds
//! every input (request-line, header block, body) so a misbehaving
//! client cannot balloon the daemon's memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (scenario files are a few KiB).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Largest accepted header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method (uppercase, e.g. `GET`).
    pub method: String,
    /// The request path (query strings are not used by this service and
    /// arrive verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request that could not be read: the status code to answer with and
/// a human-readable reason.
#[derive(Debug)]
pub struct HttpError {
    /// Response status for the failure (400, 413, …).
    pub status: u16,
    /// Human-readable reason, sent as the response body.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads one HTTP/1.1 request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .by_ref()
        .take(MAX_HEADER_BYTES as u64)
        .read_line(&mut line)
        .map_err(|e| HttpError::bad_request(format!("reading request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_uppercase(), p.to_string(), v),
        _ => {
            return Err(HttpError::bad_request(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported version {version}"
        )));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| HttpError::bad_request(format!("reading headers: {e}")))?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError {
                status: 431,
                message: "header block too large".to_string(),
            });
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_lowercase(), value.trim().to_string()))
            }
            None => return Err(HttpError::bad_request(format!("malformed header {line:?}"))),
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|e| HttpError::bad_request(format!("bad content-length: {e}")))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::bad_request(format!("reading body: {e}")))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra `(name, value)` headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Content type of the body.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A response with a JSON-lines body (one JSON object per line).
    pub fn jsonl(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/x-ndjson",
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }
}

/// Writes a response and flushes the stream.  Write errors are returned
/// for logging; the connection is closed either way.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// What the blocking client returns for one exchange: status code,
/// lowercased `(name, value)` headers, and the response body.
pub type ClientResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// A minimal blocking HTTP client for the ctl binary, the smoke driver
/// and the integration tests: one request, `Connection: close`, whole
/// response buffered.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
) -> Result<ClientResponse, String> {
    // `connect_timeout` rather than `connect`: a plain connect blocks
    // for the kernel's own (minutes-long) timeout on a dead or
    // firewalled address, which made `campaignctl wait-healthy` ignore
    // its deadline entirely.
    let socket_addr = std::net::ToSocketAddrs::to_socket_addrs(addr)
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {method} {path}: {e}"))?;

    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).map_err(|e| format!("read response: {e}"))?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(|e| format!("bad header: {e}"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers, raw[header_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/echo");
            assert_eq!(request.body, b"hello");
            assert_eq!(request.header("x-extra"), None);
            write_response(
                &mut stream,
                &Response::text(200, "world").with_header("x-cells", "8"),
            )
            .unwrap();
        });
        let (status, headers, body) = http_request(
            &addr,
            "POST",
            "/echo",
            b"hello",
            std::time::Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"world");
        assert_eq!(headers.iter().find(|(n, _)| n == "x-cells").unwrap().1, "8");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let err = read_request(&mut stream).unwrap_err();
            assert_eq!(err.status, 413);
            write_response(&mut stream, &Response::text(err.status, err.message)).unwrap();
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut out = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 413"));
        server.join().unwrap();
    }
}
