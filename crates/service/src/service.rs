//! The campaign service: shared state, bounded admission, the dispatcher
//! and the HTTP front end.
//!
//! One [`CampaignRunner`] — and therefore one warm
//! [`ResultStore`](dmpb_scenario::ResultStore) and one persistent
//! [`WorkerPool`](dmpb_motifs::workers::WorkerPool) — serves every
//! client for the daemon's lifetime.  Submissions land in a fixed-depth
//! queue (`429` once it is full: bounded admission, not unbounded memory
//! growth) and a single dispatcher thread drains it, so campaigns run
//! one at a time at full pool width while results stream out of the
//! store to any number of concurrent readers.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dmpb_core::fnv::hash_bytes;
use dmpb_metrics::histogram::LatencyHistogram;
use dmpb_metrics::json::ObjectWriter;
use dmpb_population::TopologyFamily;
use dmpb_scenario::{CampaignReport, CampaignRunner, ResultStore, Scenario, StoreStats};

use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::prometheus::render_metrics;

/// Configuration of a [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum number of campaigns waiting in the admission queue;
    /// submissions beyond it are answered `429`.
    pub queue_depth: usize,
    /// Worker-pool width for campaign cell batching.
    pub workers: usize,
    /// Streaming chunk size (elements) for cell sample executions;
    /// `None` executes monolithically.  A scenario's own
    /// `[executor] chunk_elements` takes precedence per campaign.
    pub chunk_elements: Option<usize>,
    /// Backing file for the shared result store; `None` keeps results in
    /// memory for the daemon's lifetime.
    pub store_path: Option<PathBuf>,
    /// Open the store in the sharded layout with this many segments
    /// (a legacy single-file store at `store_path` is migrated in
    /// place; an existing sharded store keeps its own segment count).
    /// `None` keeps whatever layout `store_path` already has.
    pub store_shards: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 16,
            workers: dmpb_scenario::runner::DEFAULT_WORKERS,
            chunk_elements: None,
            store_path: None,
            store_shards: None,
        }
    }
}

/// Lifecycle of one submitted campaign.
#[derive(Debug, Clone)]
pub enum CampaignStatus {
    /// Waiting in the admission queue.
    Queued,
    /// Currently executing on the worker pool.
    Running,
    /// Finished; the JSONL report is ready to stream.
    Done {
        /// The report as JSON lines (one cell per line).
        body: String,
        /// Number of cells in the report.
        cells: usize,
        /// Cells served from the result store.
        served: usize,
        /// The report digest (worker-count- and cache-independent).
        digest: u64,
        /// Wall-clock milliseconds the campaign took.
        wall_ms: u64,
    },
    /// Failed; submitting again after a fix re-uses every completed cell.
    Failed {
        /// Why the campaign failed.
        error: String,
    },
}

impl CampaignStatus {
    fn name(&self) -> &'static str {
        match self {
            CampaignStatus::Queued => "queued",
            CampaignStatus::Running => "running",
            CampaignStatus::Done { .. } => "done",
            CampaignStatus::Failed { .. } => "failed",
        }
    }
}

#[derive(Debug)]
struct CampaignEntry {
    scenario: Scenario,
    cells: usize,
    status: CampaignStatus,
}

/// Cumulative service counters (all monotonic).
#[derive(Debug, Default)]
pub(crate) struct ServiceCounters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub running: AtomicU64,
    /// Synthetic population cells finished (computed or store-served),
    /// indexed by the member's concrete family's position in
    /// [`TopologyFamily::CONCRETE`].
    pub population_cells: [AtomicU64; 4],
}

impl ServiceCounters {
    /// Accumulates a completed report's synthetic cells into the
    /// per-family counters.
    fn record_population_cells(&self, report: &CampaignReport) {
        for cell in report.cells() {
            let Some(pop) = &cell.population else {
                continue;
            };
            if let Some(index) = pop
                .family
                .parse::<TopologyFamily>()
                .ok()
                .and_then(|family| TopologyFamily::CONCRETE.iter().position(|f| *f == family))
            {
                self.population_cells[index].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

pub(crate) struct ServiceState {
    pub(crate) runner: CampaignRunner,
    pub(crate) latency: Arc<LatencyHistogram>,
    pub(crate) counters: ServiceCounters,
    pub(crate) queue_depth: usize,
    pub(crate) workers: usize,
    pub(crate) started: Instant,
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    campaigns: Mutex<HashMap<String, CampaignEntry>>,
    submissions: Mutex<Vec<String>>,
    shutdown: AtomicBool,
}

impl ServiceState {
    pub(crate) fn queue_len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn lock_campaigns(&self) -> std::sync::MutexGuard<'_, HashMap<String, CampaignEntry>> {
        self.campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running campaign service; dropping it shuts the service down.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the shared result store's counters.
    pub fn store_stats(&self) -> StoreStats {
        self.state.runner.store_stats()
    }

    /// The current `/metrics` exposition (also used by tests to check the
    /// endpoint against [`ServiceHandle::store_stats`]).
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.state)
    }

    /// Stops accepting, drains the in-flight campaign, and joins the
    /// service threads.  Queued-but-unstarted campaigns are abandoned.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.wake.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.dispatcher.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds the service and spawns its accept and dispatcher threads.
pub fn serve(config: ServiceConfig) -> Result<ServiceHandle, String> {
    // One pool serves the daemon's lifetime: it scans the sharded
    // store's segments at boot and batches campaign cells thereafter.
    let pool = Arc::new(dmpb_motifs::workers::WorkerPool::new(
        config.workers.max(1).saturating_sub(1),
    ));
    let store = match &config.store_path {
        Some(path) => {
            if config.store_shards.is_some() || path.is_dir() {
                ResultStore::open_sharded_with_pool(
                    path,
                    config
                        .store_shards
                        .unwrap_or(dmpb_scenario::DEFAULT_STORE_SHARDS),
                    Some(&pool),
                )?
            } else {
                ResultStore::open(path)?
            }
        }
        None => ResultStore::in_memory(),
    };
    dmpb_motifs::KernelProfiler::global().set_enabled(true);
    let latency = Arc::new(LatencyHistogram::new());
    let recorder = Arc::clone(&latency);
    // A daemon exists to be observed: kernel profiling is always on, so
    // `/metrics` can expose per-kind execution counters.  Profiling never
    // changes results (reports and digests are profile-independent).
    let runner = CampaignRunner::with_store(store)
        .with_worker_pool(pool)
        .with_workers(config.workers.max(1))
        .with_chunk_elements(config.chunk_elements)
        .with_kernel_profiling(true)
        .with_cell_observer(Arc::new(move |_outcome, wall| recorder.record(wall)));

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;

    let state = Arc::new(ServiceState {
        runner,
        latency,
        counters: ServiceCounters::default(),
        queue_depth: config.queue_depth,
        workers: config.workers.max(1),
        started: Instant::now(),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        campaigns: Mutex::new(HashMap::new()),
        submissions: Mutex::new(Vec::new()),
        shutdown: AtomicBool::new(false),
    });

    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("campaignd-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))
        .map_err(|e| format!("spawning accept thread: {e}"))?;

    let dispatch_state = Arc::clone(&state);
    let dispatcher = std::thread::Builder::new()
        .name("campaignd-dispatch".to_string())
        .spawn(move || dispatch_loop(dispatch_state))
        .map_err(|e| format!("spawning dispatcher thread: {e}"))?;

    Ok(ServiceHandle {
        addr,
        state,
        accept: Some(accept),
        dispatcher: Some(dispatcher),
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServiceState>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let state = Arc::clone(&state);
                // One thread per connection: requests are short-lived
                // (submit / poll / scrape) and read/write under timeouts,
                // so a slow client ties up one thread, never the service.
                let _ = std::thread::Builder::new()
                    .name("campaignd-conn".to_string())
                    .spawn(move || handle_connection(stream, &state));
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn dispatch_loop(state: Arc<ServiceState>) {
    loop {
        let id = {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let scenario = {
            let mut campaigns = state.lock_campaigns();
            let entry = campaigns
                .get_mut(&id)
                .expect("queued campaign is registered");
            entry.status = CampaignStatus::Running;
            entry.scenario.clone()
        };
        state.counters.running.store(1, Ordering::Relaxed);
        let start = Instant::now();
        let status = match state.runner.try_run(&scenario) {
            Ok(report) => {
                state.counters.completed.fetch_add(1, Ordering::Relaxed);
                state.counters.record_population_cells(&report);
                CampaignStatus::Done {
                    cells: report.outcomes.len(),
                    served: report.cache_hits(),
                    digest: report.digest(),
                    wall_ms: start.elapsed().as_millis() as u64,
                    body: report.to_lines(),
                }
            }
            Err(e) => {
                state.counters.failed.fetch_add(1, Ordering::Relaxed);
                CampaignStatus::Failed {
                    error: e.to_string(),
                }
            }
        };
        state.counters.running.store(0, Ordering::Relaxed);
        state
            .lock_campaigns()
            .get_mut(&id)
            .expect("running campaign is registered")
            .status = status;
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServiceState) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let response = match read_request(&mut stream) {
        Ok(request) => route(&request, state),
        Err(HttpError { status, message }) => Response::text(status, message),
    };
    let _ = write_response(&mut stream, &response);
}

fn route(request: &Request, state: &ServiceState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response::text(200, render_metrics(state)),
        ("POST", "/campaigns") => submit_campaign(request, state),
        ("GET", "/campaigns") => list_campaigns(state),
        ("GET", path) if path.starts_with("/campaigns/") => {
            campaign_status(&path["/campaigns/".len()..], state)
        }
        ("GET" | "POST", _) => Response::text(404, format!("no route for {}\n", request.path)),
        (method, _) => Response::text(405, format!("method {method} not allowed\n")),
    }
}

fn status_line(id: &str, entry: &CampaignEntry) -> String {
    let mut w = ObjectWriter::new();
    w.field_str("id", id);
    w.field_str("scenario", &entry.scenario.name);
    w.field_str("status", entry.status.name());
    w.field_int("cells", entry.cells as i64);
    match &entry.status {
        CampaignStatus::Done {
            served,
            digest,
            wall_ms,
            ..
        } => {
            w.field_int("served", *served as i64);
            w.field_u64_hex("digest", *digest);
            w.field_int("wall_ms", *wall_ms as i64);
        }
        CampaignStatus::Failed { error } => w.field_str("error", error),
        _ => {}
    }
    w.finish()
}

fn submit_campaign(request: &Request, state: &ServiceState) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::text(503, "shutting down\n");
    }
    let source = match std::str::from_utf8(&request.body) {
        Ok(source) => source,
        Err(e) => return Response::text(400, format!("body is not UTF-8: {e}\n")),
    };
    let scenario = match Scenario::parse(source) {
        Ok(scenario) => scenario,
        Err(e) => return Response::text(400, format!("scenario: {e}\n")),
    };
    let cells = scenario.expand().len();

    // Bounded admission: the queue has a fixed depth, and a full queue
    // answers 429 instead of growing without bound.
    let id = {
        let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= state.queue_depth {
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let mut w = ObjectWriter::new();
            w.field_str("error", "admission queue full");
            w.field_int("queue_depth", state.queue_depth as i64);
            return Response::json(429, w.finish()).with_header("retry-after", "1");
        }
        let seq = state.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let id = format!("{seq:04x}-{:016x}", hash_bytes(request.body.as_slice()));
        queue.push_back(id.clone());
        state.lock_campaigns().insert(
            id.clone(),
            CampaignEntry {
                scenario: scenario.clone(),
                cells,
                status: CampaignStatus::Queued,
            },
        );
        state
            .submissions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(id.clone());
        id
    };
    state.wake.notify_one();

    let mut w = ObjectWriter::new();
    w.field_str("id", &id);
    w.field_str("scenario", &scenario.name);
    w.field_str("status", "queued");
    w.field_int("cells", cells as i64);
    Response::json(202, w.finish()).with_header("location", format!("/campaigns/{id}"))
}

fn list_campaigns(state: &ServiceState) -> Response {
    let submissions = state
        .submissions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let campaigns = state.lock_campaigns();
    let mut body = String::new();
    for id in &submissions {
        if let Some(entry) = campaigns.get(id) {
            body.push_str(&status_line(id, entry));
            body.push('\n');
        }
    }
    Response::jsonl(200, body)
}

fn campaign_status(id: &str, state: &ServiceState) -> Response {
    let campaigns = state.lock_campaigns();
    let Some(entry) = campaigns.get(id) else {
        return Response::text(404, format!("unknown campaign {id}\n"));
    };
    match &entry.status {
        CampaignStatus::Done {
            body,
            cells,
            served,
            digest,
            wall_ms,
        } => Response::jsonl(200, body.clone())
            .with_header("x-dmpb-cells", cells.to_string())
            .with_header("x-dmpb-store-served", served.to_string())
            .with_header("x-dmpb-digest", format!("{digest:016x}"))
            .with_header("x-dmpb-wall-ms", wall_ms.to_string()),
        CampaignStatus::Failed { .. } => Response::json(500, status_line(id, entry)),
        CampaignStatus::Queued | CampaignStatus::Running => {
            Response::json(202, status_line(id, entry))
        }
    }
}
