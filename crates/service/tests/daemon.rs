//! Integration tests of the campaign daemon over real TCP: concurrent
//! clients, warm store-served re-submission, `/metrics` consistency with
//! the store's own counters, and bounded-admission rejection.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dmpb_service::http::{http_request, ClientResponse};
use dmpb_service::{serve, ServiceConfig};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A small two-workload sweep: 2 workloads x 2 seeds = 4 cells.
const SCENARIO: &str = r#"
[scenario]
name = "daemon-it"
description = "small sweep for the daemon integration test"

[axes]
workloads = ["TeraSort", "KMeans"]
clusters = ["five-node-westmere"]
elements = [600]
seeds = [7, 8]
"#;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmpb-daemon-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("store.jsonl")
}

fn get(addr: &str, path: &str) -> ClientResponse {
    http_request(addr, "GET", path, b"", TIMEOUT).expect("GET succeeds at the transport level")
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("response missing header {name}"))
}

fn submit(addr: &str, source: &str) -> String {
    let (status, _, body) =
        http_request(addr, "POST", "/campaigns", source.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(
        status,
        202,
        "submission should be accepted: {}",
        String::from_utf8_lossy(&body)
    );
    let text = String::from_utf8(body).unwrap();
    let fields = dmpb_metrics::json::parse_object(text.trim()).unwrap();
    fields
        .iter()
        .find(|(k, _)| k == "id")
        .and_then(|(_, v)| v.as_str().map(str::to_string))
        .expect("submission response carries an id")
}

/// Polls until the campaign stops being queued/running.
fn wait_done(addr: &str, id: &str) -> ClientResponse {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let (status, headers, body) = get(addr, &format!("/campaigns/{id}"));
        if status != 202 {
            return (status, headers, body);
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} still pending after {TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn metric_value(page: &str, name: &str) -> f64 {
    page.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metrics page missing {name}\n{page}"))
}

#[test]
fn concurrent_clients_then_warm_resubmission_is_store_served() {
    let store = temp_store("warm");
    let handle = serve(ServiceConfig {
        store_path: Some(store.clone()),
        queue_depth: 8,
        workers: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let (status, _, body) = get(&addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    // Two clients race their submissions from separate threads over real
    // TCP; both campaigns must complete (the second waits in the queue).
    let cold: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let id = submit(&addr, SCENARIO);
                    wait_done(&addr, &id)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, _, body) in &cold {
        assert_eq!(
            *status,
            200,
            "campaign failed: {}",
            String::from_utf8_lossy(body)
        );
    }
    // Whichever client ran second was fully served from the store, so
    // both reports are byte-identical.
    assert_eq!(cold[0].2, cold[1].2, "concurrent reports must agree");

    // A warm re-submission is >= 90% store-served and byte-identical.
    let id = submit(&addr, SCENARIO);
    let (status, headers, warm_body) = wait_done(&addr, &id);
    assert_eq!(status, 200);
    let cells: usize = header(&headers, "x-dmpb-cells").parse().unwrap();
    let served: usize = header(&headers, "x-dmpb-store-served").parse().unwrap();
    assert_eq!(cells, 4, "2 workloads x 2 seeds should expand to 4 cells");
    assert!(
        served as f64 >= 0.9 * cells as f64,
        "warm run should be store-served: {served}/{cells}"
    );
    assert_eq!(warm_body, cold[0].2, "warm report must be byte-identical");

    // /metrics must agree with the store's own counters.
    let (status, _, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let page = String::from_utf8(metrics).unwrap();
    let stats = handle.store_stats();
    assert_eq!(
        metric_value(&page, "dmpb_store_hits_total") as u64,
        stats.hits
    );
    assert_eq!(
        metric_value(&page, "dmpb_store_misses_total") as u64,
        stats.misses
    );
    assert_eq!(
        metric_value(&page, "dmpb_store_entries") as usize,
        stats.entries
    );
    assert_eq!(metric_value(&page, "dmpb_campaigns_completed_total"), 3.0);
    assert_eq!(metric_value(&page, "dmpb_campaigns_submitted_total"), 3.0);
    // The page renders the ratio at 6 decimal places.
    assert!((metric_value(&page, "dmpb_store_hit_ratio") - stats.hit_ratio()).abs() < 1e-5);
    // The histogram saw every cell of every campaign.
    assert_eq!(
        metric_value(&page, "dmpb_cell_latency_seconds_count") as u64,
        3 * cells as u64
    );
    // The daemon runs with kernel profiling always on, so per-kind
    // execution counters are exposed once kernels have run.
    assert!(
        page.contains("dmpb_kernel_invocations_total{kind=\""),
        "per-kind kernel counters missing:\n{page}"
    );
    assert!(page.contains("dmpb_kernel_elements_total{kind=\""));
    assert!(page.contains("dmpb_kernel_seconds_total{kind=\""));

    // The submission list shows all three campaigns done, in order.
    let (status, _, list) = get(&addr, "/campaigns");
    assert_eq!(status, 200);
    let list = String::from_utf8(list).unwrap();
    assert_eq!(list.lines().count(), 3);
    assert!(list
        .lines()
        .all(|line| line.contains("\"status\":\"done\"")));

    handle.shutdown();
    std::fs::remove_dir_all(store.parent().unwrap()).ok();
}

#[test]
fn full_admission_queue_answers_429() {
    // Depth 0 makes every submission an overflow, deterministically.
    let handle = serve(ServiceConfig {
        queue_depth: 0,
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let (status, headers, body) =
        http_request(&addr, "POST", "/campaigns", SCENARIO.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header(&headers, "retry-after"), "1");
    assert!(String::from_utf8_lossy(&body).contains("admission queue full"));

    let (_, _, metrics) = get(&addr, "/metrics");
    let page = String::from_utf8(metrics).unwrap();
    assert_eq!(metric_value(&page, "dmpb_campaigns_rejected_total"), 1.0);
    assert_eq!(metric_value(&page, "dmpb_campaigns_submitted_total"), 0.0);

    handle.shutdown();
}

#[test]
fn bad_requests_get_specific_statuses() {
    let handle = serve(ServiceConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    let (status, _, body) =
        http_request(&addr, "POST", "/campaigns", b"[scenario", TIMEOUT).unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).starts_with("scenario:"));

    let (status, _, _) = get(&addr, "/campaigns/0000-ffffffffffffffff");
    assert_eq!(status, 404);

    let (status, _, _) = get(&addr, "/nope");
    assert_eq!(status, 404);

    let (status, _, _) = http_request(&addr, "DELETE", "/campaigns", b"", TIMEOUT).unwrap();
    assert_eq!(status, 405);

    handle.shutdown();
}

/// A population-only sweep: 3 synthesized workloads, no named ones.
const POPULATION_SCENARIO: &str = r#"
[scenario]
name = "daemon-population"
description = "population sweep for the daemon integration test"

[axes]
workloads = []
elements = [600]

[population]
size = 3
base-seed = 0xDA7A
family = "mixed"
"#;

#[test]
fn population_campaigns_run_and_export_per_family_counters() {
    let handle = serve(ServiceConfig {
        queue_depth: 8,
        workers: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let id = submit(&addr, POPULATION_SCENARIO);
    let (status, headers, cold_body) = wait_done(&addr, &id);
    assert_eq!(
        status,
        200,
        "population campaign failed: {}",
        String::from_utf8_lossy(&cold_body)
    );
    let cells: usize = header(&headers, "x-dmpb-cells").parse().unwrap();
    assert_eq!(cells, 3);
    let body = String::from_utf8(cold_body).unwrap();
    assert!(
        body.contains("\"pop_label\":\"synthetic-"),
        "report lines must carry the synthetic identity:\n{body}"
    );

    // A warm re-submission is store-served and still counted per family.
    let id = submit(&addr, POPULATION_SCENARIO);
    let (status, headers, warm_body) = wait_done(&addr, &id);
    assert_eq!(status, 200);
    let served: usize = header(&headers, "x-dmpb-store-served").parse().unwrap();
    assert_eq!(served, 3, "warm population run must be store-served");
    assert_eq!(String::from_utf8(warm_body).unwrap(), body);

    let (status, _, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let page = String::from_utf8(metrics).unwrap();
    // All four concrete families are always exposed, and their series
    // sum to the synthetic cells of both campaigns.
    let mut total = 0.0;
    for family in ["chain", "fork-join", "diamond", "layered"] {
        let name = format!("dmpb_population_cells_total{{family=\"{family}\"}}");
        total += metric_value(&page, &name);
    }
    assert_eq!(total as usize, 2 * cells, "{page}");

    handle.shutdown();
}

/// Sums every series of a labelled per-shard metric family on the page.
fn shard_family_sum(page: &str, family: &str) -> f64 {
    let mut series = 0;
    let sum = page
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(family)?;
            let rest = rest.strip_prefix("{shard=\"")?;
            let (_, value) = rest.split_once("\"} ")?;
            series += 1;
            value.trim().parse::<f64>().ok()
        })
        .sum();
    assert!(series > 0, "metrics page has no {family} series:\n{page}");
    sum
}

#[test]
fn sharded_store_daemon_exports_per_shard_metrics_that_sum_to_aggregates() {
    let store_dir =
        std::env::temp_dir().join(format!("dmpb-daemon-shards-{}/store", std::process::id()));
    std::fs::remove_dir_all(store_dir.parent().unwrap()).ok();
    let handle = serve(ServiceConfig {
        store_path: Some(store_dir.clone()),
        store_shards: Some(4),
        queue_depth: 8,
        workers: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // A cold then a warm submission: the warm one turns lookups into
    // hits, so every per-shard family carries real, non-zero traffic.
    let cold_id = submit(&addr, SCENARIO);
    let (status, _, cold_body) = wait_done(&addr, &cold_id);
    assert_eq!(status, 200);
    let warm_id = submit(&addr, SCENARIO);
    let (status, _, warm_body) = wait_done(&addr, &warm_id);
    assert_eq!(status, 200);
    assert_eq!(
        cold_body, warm_body,
        "sharded warm report must be byte-identical"
    );

    let (status, _, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let page = String::from_utf8(metrics).unwrap();
    let stats = handle.store_stats();
    assert!(stats.hits > 0, "warm run must have produced store hits");
    let families = [
        ("dmpb_store_shard_hits_total", stats.hits),
        ("dmpb_store_shard_misses_total", stats.misses),
        ("dmpb_store_shard_entries", stats.entries as u64),
        (
            "dmpb_store_shard_persist_errors_total",
            stats.persist_errors,
        ),
    ];
    for (family, aggregate) in families {
        assert_eq!(
            shard_family_sum(&page, family) as u64,
            aggregate,
            "{family} series must sum to the aggregate counter"
        );
    }
    // One series per configured shard.
    assert_eq!(
        page.lines()
            .filter(|l| l.starts_with("dmpb_store_shard_entries{"))
            .count(),
        4
    );

    handle.shutdown();
    std::fs::remove_dir_all(store_dir.parent().unwrap()).ok();
}
