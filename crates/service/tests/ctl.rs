//! Bin-level tests for `campaignctl`: the `wait-healthy` deadline must
//! actually bound the wait — before PR 7 a dead or black-holed address
//! left the command retrying forever because the underlying connect had
//! no timeout of its own.

use std::net::TcpListener;
use std::process::Command;
use std::time::{Duration, Instant};

/// A local port with nothing listening on it: bind an ephemeral port,
/// read its number, drop the listener.
fn dead_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().port()
}

#[test]
fn wait_healthy_times_out_with_nonzero_exit_on_a_dead_port() {
    let addr = format!("127.0.0.1:{}", dead_port());
    let start = Instant::now();
    let output = Command::new(env!("CARGO_BIN_EXE_campaignctl"))
        .args(["wait-healthy", "--addr", &addr, "--timeout-secs", "2"])
        .output()
        .expect("campaignctl runs");
    let elapsed = start.elapsed();

    assert!(
        !output.status.success(),
        "wait-healthy must fail against a dead port"
    );
    assert_eq!(output.status.code(), Some(1), "failure exit code is 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("not healthy after") && stderr.contains(&addr),
        "stderr must say what timed out where: {stderr}"
    );
    assert!(
        stderr.contains("attempt"),
        "stderr must report the attempt count: {stderr}"
    );
    // The deadline must bound the wall clock (generous slack for slow
    // CI runners — the pre-fix behaviour was minutes, not seconds).
    assert!(
        elapsed < Duration::from_secs(30),
        "wait-healthy took {elapsed:?} against a 2s deadline"
    );
}

#[test]
fn wait_healthy_succeeds_against_a_live_listener() {
    // A hand-rolled one-shot /healthz responder is enough: wait-healthy
    // only needs a 200.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        // Serve until the client saw its 200 (it may retry connects).
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            use std::io::{Read, Write};
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let ok = stream
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: close\r\n\r\nok\n")
                .is_ok();
            if ok {
                break;
            }
        }
    });

    let output = Command::new(env!("CARGO_BIN_EXE_campaignctl"))
        .args(["wait-healthy", "--addr", &addr, "--timeout-secs", "10"])
        .output()
        .expect("campaignctl runs");
    assert!(
        output.status.success(),
        "wait-healthy must succeed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        String::from_utf8_lossy(&output.stdout).contains("healthy"),
        "stdout reports health"
    );
    server.join().unwrap();
}
